(* Physical frame allocator. *)
module Physmem = Kernel_sim.Physmem

let mb = 1024 * 1024

let mk () = Physmem.create ~ram_bytes:(1 * mb) ~reserved_bytes:(64 * 1024)

let test_geometry () =
  let p = mk () in
  Alcotest.(check int) "total frames" 256 (Physmem.total_frames p);
  Alcotest.(check int) "reserved frames" 16 (Physmem.reserved_frames p);
  Alcotest.(check int) "free frames" 240 (Physmem.free_frames p)

let test_alloc_free () =
  let p = mk () in
  (match Physmem.alloc p with
  | Some rpn ->
      Alcotest.(check bool) "not reserved" true (rpn >= 16);
      Alcotest.(check bool) "allocated" true (Physmem.is_allocated p rpn);
      Physmem.free p rpn;
      Alcotest.(check bool) "freed" false (Physmem.is_allocated p rpn)
  | None -> Alcotest.fail "allocation failed");
  Alcotest.(check int) "back to full" 240 (Physmem.free_frames p)

let test_lifo_reuse () =
  let p = mk () in
  let a = Option.get (Physmem.alloc p) in
  Physmem.free p a;
  let b = Option.get (Physmem.alloc p) in
  Alcotest.(check int) "freed frame reused first" a b

let test_exhaustion () =
  let p = mk () in
  for _ = 1 to 240 do
    match Physmem.alloc p with
    | Some _ -> ()
    | None -> Alcotest.fail "exhausted early"
  done;
  Alcotest.(check (option int)) "exhausted" None (Physmem.alloc p)

let test_errors () =
  let p = mk () in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "free reserved" true
    (raises (fun () -> Physmem.free p 0));
  Alcotest.(check bool) "free out of range" true
    (raises (fun () -> Physmem.free p 100000));
  let rpn = Option.get (Physmem.alloc p) in
  Physmem.free p rpn;
  Alcotest.(check bool) "double free" true
    (raises (fun () -> Physmem.free p rpn))

let test_reserved_marked () =
  let p = mk () in
  Alcotest.(check bool) "reserved is allocated" true
    (Physmem.is_allocated p 0);
  Alcotest.(check bool) "out of range is not" false
    (Physmem.is_allocated p (-1))

let prop_no_double_allocation =
  QCheck.Test.make ~name:"allocator never hands out a frame twice" ~count:30
    QCheck.(list_of_size (Gen.return 200) bool)
    (fun ops ->
      let p = mk () in
      let held = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun alloc_op ->
          if alloc_op then (
            match Physmem.alloc p with
            | Some rpn ->
                if Hashtbl.mem held rpn then ok := false;
                Hashtbl.replace held rpn ()
            | None -> ())
          else
            match Hashtbl.fold (fun k () _ -> Some k) held None with
            | Some rpn ->
                Hashtbl.remove held rpn;
                Physmem.free p rpn
            | None -> ())
        ops;
      !ok)

let prop_conservation =
  QCheck.Test.make ~name:"free + held = initial free" ~count:30
    QCheck.(int_bound 100)
    (fun n ->
      let p = mk () in
      let held = ref [] in
      for _ = 1 to n do
        match Physmem.alloc p with
        | Some rpn -> held := rpn :: !held
        | None -> ()
      done;
      Physmem.free_frames p + List.length !held = 240)

let suite =
  [ Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "alloc/free" `Quick test_alloc_free;
    Alcotest.test_case "LIFO reuse" `Quick test_lifo_reuse;
    Alcotest.test_case "exhaustion" `Quick test_exhaustion;
    Alcotest.test_case "error cases" `Quick test_errors;
    Alcotest.test_case "reserved accounting" `Quick test_reserved_marked;
    QCheck_alcotest.to_alcotest prop_no_double_allocation;
    QCheck_alcotest.to_alcotest prop_conservation ]
