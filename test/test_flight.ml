(* The flight timeline layer: derived metrics, detector-rule semantics
   (Above/Below/Step/Drop, warm-up, cooldown), the rules JSON codec, the
   delta-encoded JSONL stream round-tripping through the decoder, the
   decode error paths, metric series, and the Perfetto export shape. *)
open Ppc
module Flight = Mmu_tricks.Flight
module Json = Mmu_tricks.Json

let v ?(cycle = 0) ?(perf = []) ?(gauges = []) () =
  { Flight.v_cycle = cycle; v_perf = perf; v_gauges = gauges }

let fget = function
  | Some x -> x
  | None -> Alcotest.fail "metric returned None"

(* --- derived metrics --------------------------------------------------- *)

let test_interval_metrics () =
  let prev =
    v ~cycle:100
      ~perf:[ ("cycles", 100); ("itlb_lookups", 100); ("idle_cycles", 10) ]
      ()
  in
  let cur =
    v ~cycle:1100
      ~perf:
        [ ("cycles", 1100); ("itlb_lookups", 900); ("dtlb_lookups", 200);
          ("itlb_misses", 6); ("dtlb_misses", 4); ("idle_cycles", 260);
          ("vsid_wraps", 2); ("context_switches", 5) ]
      ()
  in
  let m name = Flight.compute name ~prev:(Some prev) cur in
  Alcotest.(check (float 1e-9)) "tlb misses per 1k lookups" 10.0
    (fget (m "tlb_miss_rate"));
  Alcotest.(check (float 1e-9)) "idle fraction of the interval" 0.25
    (fget (m "idle_fraction"));
  Alcotest.(check (float 1e-9)) "wrap delta" 2.0 (fget (m "vsid_wrap_delta"));
  Alcotest.(check (float 1e-9)) "ctxsw per mcycle" 5000.0
    (fget (m "ctxsw_per_mcycle"));
  (* interval rates need a predecessor *)
  Alcotest.(check bool) "no prev, no rate" true
    (Flight.compute "tlb_miss_rate" ~prev:None cur = None);
  (* a zero-activity interval is 0, not a division crash *)
  Alcotest.(check (float 1e-9)) "zero denominator is 0" 0.0
    (fget (Flight.compute "tlb_miss_rate" ~prev:(Some cur) cur))

let test_gauge_metrics () =
  let cur =
    v
      ~gauges:
        [ ("htab_chains", [| 5; 3; 0; 2; 0; 0; 0; 0; 0 |]);
          ("htab", [| 512; 1024; 128 |]);
          ("runq", [| 3; 9; 1; 5 |]);
          ("span", [| 10; 500; 900 |]) ]
      ()
  in
  let m name = fget (Flight.compute name ~prev:None cur) in
  Alcotest.(check (float 1e-9)) "longest occupied chain bucket" 3.0
    (m "pteg_max_chain");
  Alcotest.(check (float 1e-9)) "occupancy pct" 50.0 (m "htab_occupancy_pct");
  Alcotest.(check (float 1e-9)) "zombie pct of valid" 25.0
    (m "htab_zombie_pct");
  Alcotest.(check (float 1e-9)) "runq spread" 8.0 (m "runq_imbalance");
  Alcotest.(check (float 1e-9)) "span p99" 900.0 (m "span_p99_cycles");
  (* gauges absent -> metric undefined, not zero *)
  Alcotest.(check bool) "no htab gauge, no metric" true
    (Flight.compute "pteg_max_chain" ~prev:None (v ()) = None);
  (* span gauge with zero completed requests stays undefined *)
  Alcotest.(check bool) "no completed spans, no p99" true
    (Flight.compute "span_p99_cycles" ~prev:None
       (v ~gauges:[ ("span", [| 0; 0; 0 |]) ] ())
    = None)

let test_metric_directory () =
  Alcotest.(check bool) "every metric documented" true
    (List.for_all
       (fun n -> Flight.metric_doc n <> None)
       Flight.metric_names);
  Alcotest.(check bool) "unknown metric" true
    (Flight.metric_doc "bogus" = None
    && Flight.compute "bogus" ~prev:None (v ()) = None)

(* --- rules ------------------------------------------------------------- *)

let test_rule_validation () =
  Alcotest.(check bool) "valid rule builds" true
    ((Flight.rule "r" "tlb_miss_rate" (Flight.Above 1.)).Flight.rl_window = 8);
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown metric rejected" true
    (raises (fun () -> Flight.rule "r" "bogus" (Flight.Above 1.)));
  Alcotest.(check bool) "window < 1 rejected" true
    (raises (fun () ->
         Flight.rule ~window:0 "r" "tlb_miss_rate" (Flight.Above 1.)));
  Alcotest.(check bool) "cooldown < 0 rejected" true
    (raises (fun () ->
         Flight.rule ~cooldown:(-1) "r" "tlb_miss_rate" (Flight.Above 1.)))

let test_rules_json_roundtrip () =
  match Flight.rules_of_json (Flight.rules_to_json Flight.default_rules) with
  | Error m -> Alcotest.fail m
  | Ok rules ->
      Alcotest.(check bool) "default rules survive the codec" true
        (rules = Flight.default_rules)

let test_rules_json_errors () =
  let parse s =
    match Json.of_string s with
    | Ok j -> Flight.rules_of_json j
    | Error m -> Alcotest.fail m
  in
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "not an object with rules" true
    (is_err (parse {|{"x": 1}|}));
  Alcotest.(check bool) "rule without id" true
    (is_err (parse {|{"rules": [{"metric": "tlb_miss_rate", "above": 1}]}|}));
  Alcotest.(check bool) "rule without metric" true
    (is_err (parse {|{"rules": [{"id": "r", "above": 1}]}|}));
  Alcotest.(check bool) "no trigger" true
    (is_err (parse {|{"rules": [{"id": "r", "metric": "tlb_miss_rate"}]}|}));
  Alcotest.(check bool) "two triggers" true
    (is_err
       (parse
          {|{"rules": [{"id": "r", "metric": "tlb_miss_rate", "above": 1, "step": 2}]}|}));
  Alcotest.(check bool) "unknown metric inside a rule" true
    (is_err (parse {|{"rules": [{"id": "r", "metric": "bogus", "above": 1}]}|}));
  (* window/cooldown default when omitted *)
  match
    parse {|{"rules": [{"id": "r", "metric": "idle_fraction", "drop": 4}]}|}
  with
  | Error m -> Alcotest.fail m
  | Ok [ r ] ->
      Alcotest.(check bool) "drop trigger decoded with defaults" true
        (r.Flight.rl_trigger = Flight.Drop 4.
        && r.Flight.rl_window = 8 && r.Flight.rl_cooldown = 8)
  | Ok _ -> Alcotest.fail "expected one rule"

let test_load_rules_missing_file () =
  Alcotest.(check bool) "missing file is an Error" true
    (match Flight.load_rules "/nonexistent/rules.json" with
    | Error _ -> true
    | Ok _ -> false)

(* --- detector ---------------------------------------------------------- *)

(* Drive the detector through the runq gauge: instantaneous, so each
   fed value is exactly the metric value. *)
let runq_view =
  let cycle = ref 0 in
  fun depth ->
    incr cycle;
    v ~cycle:!cycle ~gauges:[ ("runq", [| depth; 0 |]) ] ()

let feed det xs =
  let prev = ref None in
  List.concat_map
    (fun x ->
      let cur = runq_view x in
      let incs =
        Flight.detector_step det ~run:1 ~label:"t" ~prev:!prev cur
      in
      prev := Some cur;
      incs)
    xs

let test_above_and_cooldown () =
  let det =
    Flight.detector
      [ Flight.rule ~cooldown:2 "hot" "runq_imbalance" (Flight.Above 10.) ]
  in
  (* fires immediately (no warm-up), then the cooldown eats the next two
     over-threshold samples, then it fires again *)
  let incs = feed det [ 11; 11; 11; 11; 3; 11 ] in
  Alcotest.(check int) "two firings" 2 (List.length incs);
  let first = List.hd incs in
  Alcotest.(check string) "rule id" "hot" first.Flight.i_rule;
  Alcotest.(check string) "metric" "runq_imbalance" first.Flight.i_metric;
  Alcotest.(check (float 1e-9)) "value" 11.0 first.Flight.i_value;
  Alcotest.(check string) "trigger text" "> 10" first.Flight.i_trigger;
  Alcotest.(check bool) "no profiler, no attribution" true
    (first.Flight.i_attr = [])

let test_below_needs_warmup () =
  let det =
    Flight.detector
      [ Flight.rule ~window:3 ~cooldown:0 "cold" "runq_imbalance"
          (Flight.Below 5.) ]
  in
  (* three under-threshold samples during warm-up don't fire; the
     fourth (window now full) does *)
  Alcotest.(check int) "startup cannot trip it" 1
    (List.length (feed det [ 1; 1; 1; 1 ]))

let test_step_excludes_current () =
  let det =
    Flight.detector
      [ Flight.rule ~window:4 ~cooldown:0 "step" "runq_imbalance"
          (Flight.Step 3.) ]
  in
  (* baseline mean is the 4 samples before the spike: 10 > 3 x 1 *)
  let incs = feed det [ 1; 1; 1; 1; 10 ] in
  Alcotest.(check int) "fires on the step" 1 (List.length incs);
  Alcotest.(check (float 1e-9)) "at the spiked value" 10.0
    (List.hd incs).Flight.i_value

let test_step_quiet_on_zero_baseline () =
  let det =
    Flight.detector
      [ Flight.rule ~window:3 ~cooldown:0 "step" "runq_imbalance"
          (Flight.Step 3.) ]
  in
  Alcotest.(check int) "zero mean never steps" 0
    (List.length (feed det [ 0; 0; 0; 9 ]))

let test_drop () =
  let det () =
    Flight.detector
      [ Flight.rule ~window:4 ~cooldown:0 "drop" "runq_imbalance"
          (Flight.Drop 20.) ]
  in
  Alcotest.(check int) "collapse under mean/20 fires" 1
    (List.length (feed (det ()) [ 100; 100; 100; 100; 2 ]));
  Alcotest.(check int) "always-zero metric stays quiet" 0
    (List.length (feed (det ()) [ 0; 0; 0; 0; 0; 0 ]))

(* --- incidents --------------------------------------------------------- *)

let test_incident_codec () =
  let i =
    { Flight.i_run = 3; i_label = "optimized"; i_cycle = 12345;
      i_rule = "htab-chain-spike"; i_metric = "pteg_max_chain";
      i_value = 8.0; i_trigger = "> 7.5";
      i_attr = [ (1, 2, 0, 10, 999); (4, 5, 2, 3, 77) ] }
  in
  Alcotest.(check bool) "round trips" true
    (Flight.incident_of_json (Flight.incident_json i) = i);
  Alcotest.(check string) "describe"
    "[optimized] htab-chain-spike at cycle 12345: pteg_max_chain = 8 (> 7.5)"
    (Flight.describe_incident i)

(* --- sink / stream / decode round trip --------------------------------- *)

let stream_one_run () =
  let perf = Perf.create () in
  let rcd = Recorder.create ~perf in
  Recorder.enable ~every:100 ~cap:64 rcd;
  Recorder.set_label rcd "unit";
  let runq = ref [| 1; 1 |] in
  Recorder.add_source rcd ~name:"runq" (fun () -> Array.copy !runq);
  let lines = ref [] in
  let sk = Flight.sink ~write:(fun l -> lines := l :: !lines) () in
  Flight.attach sk rcd;
  for i = 1 to 5 do
    perf.Perf.cycles <- i * 100;
    perf.Perf.itlb_lookups <- i * 10;
    if i = 4 then runq := [| 20; 0 |] else runq := [| 1; 1 |];
    Recorder.take_sample rcd
  done;
  Flight.finish sk rcd;
  (Recorder.run_id rcd, sk, List.rev !lines)

let test_stream_decode_roundtrip () =
  let run, sk, lines = stream_one_run () in
  match Flight.decode_lines lines with
  | Error m -> Alcotest.fail m
  | Ok [ tl ] ->
      Alcotest.(check int) "run id" run tl.Flight.tl_run;
      Alcotest.(check string) "label" "unit" tl.Flight.tl_label;
      Alcotest.(check bool) "ended" true tl.Flight.tl_ended;
      Alcotest.(check int) "total" 5 tl.Flight.tl_total;
      Alcotest.(check int) "all samples streamed" 5
        (List.length tl.Flight.tl_views);
      (* deltas re-integrate to absolute values *)
      let last = List.nth tl.Flight.tl_views 4 in
      Alcotest.(check int) "cycles re-integrated" 500
        (Flight.pfield last "cycles");
      Alcotest.(check int) "lookups re-integrated" 50
        (Flight.pfield last "itlb_lookups");
      Alcotest.(check bool) "gauge re-integrated" true
        (Flight.gauge last "runq" = Some [| 1; 1 |]);
      (* the runq spike at sample 4 fired the stock imbalance rule,
         streamed as an incident line and kept by the sink *)
      Alcotest.(check int) "incident decoded" 1
        (List.length tl.Flight.tl_incidents);
      let i = List.hd tl.Flight.tl_incidents in
      Alcotest.(check string) "stock rule fired" "runq-imbalance"
        i.Flight.i_rule;
      Alcotest.(check (float 1e-9)) "at the spike" 20.0 i.Flight.i_value;
      Alcotest.(check bool) "sink kept the same incident" true
        (Flight.incidents sk = [ i ])
  | Ok l -> Alcotest.fail (Printf.sprintf "%d timelines" (List.length l))

let test_delta_encoding_is_sparse () =
  let _, _, lines = stream_one_run () in
  (* line 0 = begin; line 2 = the second sample: between samples only
     cycles, itlb_lookups changed (runq stayed [|1;1|]) *)
  let j =
    match Json.of_string (List.nth lines 2) with
    | Ok j -> j
    | Error m -> Alcotest.fail m
  in
  (match Json.member "p" j with
  | Some (Json.Obj kvs) ->
      Alcotest.(check (list string)) "only changed counters on the wire"
        [ "cycles"; "itlb_lookups" ]
        (List.sort compare (List.map fst kvs))
  | _ -> Alcotest.fail "second sample has no p object");
  Alcotest.(check bool) "unchanged gauge omitted" true
    (Json.member "g" j = None)

let test_decode_unclosed_run () =
  let _, _, lines = stream_one_run () in
  let truncated = List.filteri (fun i _ -> i < 3) lines in
  match Flight.decode_lines truncated with
  | Error m -> Alcotest.fail m
  | Ok [ tl ] ->
      Alcotest.(check bool) "not ended" false tl.Flight.tl_ended;
      Alcotest.(check int) "streamed views kept" 2
        (List.length tl.Flight.tl_views);
      Alcotest.(check int) "total falls back to streamed" 2
        tl.Flight.tl_total
  | Ok _ -> Alcotest.fail "expected one open run"

let test_decode_begin_reopens () =
  (* a begin for an already-open run id closes the old run: distinct
     forked workers can reuse process-unique ids *)
  let lines =
    [ {|{"run": 1, "t": "begin", "label": "a", "every": 10}|};
      {|{"run": 1, "t": "s", "c": 10, "p": {"cycles": 10}}|};
      {|{"run": 1, "t": "begin", "label": "b", "every": 10}|};
      {|{"run": 1, "t": "s", "c": 20, "p": {"cycles": 20}}|};
      {|{"run": 1, "t": "end", "label": "b", "c": 20, "samples": 1, "retained": 1, "every": 10}|}
    ]
  in
  match Flight.decode_lines lines with
  | Error m -> Alcotest.fail m
  | Ok [ a; b ] ->
      Alcotest.(check string) "first run closed by the reopen" "a"
        a.Flight.tl_label;
      Alcotest.(check bool) "implicitly, so not ended" false
        a.Flight.tl_ended;
      Alcotest.(check bool) "second run fresh state" true
        (b.Flight.tl_label = "b" && b.Flight.tl_ended
        && Flight.pfield (List.hd b.Flight.tl_views) "cycles" = 20)
  | Ok l -> Alcotest.fail (Printf.sprintf "%d timelines" (List.length l))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_decode_errors_carry_line_numbers () =
  let expect_err lines frag =
    match Flight.decode_lines lines with
    | Ok _ -> Alcotest.fail "expected a decode error"
    | Error m ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" m frag)
          true (contains m frag)
  in
  expect_err [ "not json" ] "line 1";
  expect_err [ {|{"t": "s", "run": 9, "c": 1}|} ] "no begin";
  expect_err [ {|{"t": "mystery"}|} ] "unknown record";
  expect_err [ {|{"run": 1}|} ] "without a \"t\"";
  expect_err
    [ {|{"t": "begin", "run": 1, "every": 1}|}; ""; "%%%" ]
    "line 3"

(* --- series and export ------------------------------------------------- *)

let test_series () =
  let _, _, lines = stream_one_run () in
  let tl =
    match Flight.decode_lines lines with
    | Ok [ tl ] -> tl
    | _ -> Alcotest.fail "decode"
  in
  let series = Flight.series tl in
  (match List.assoc_opt "runq_imbalance" series with
  | None -> Alcotest.fail "runq series missing"
  | Some pts ->
      Alcotest.(check int) "one point per view" 5 (List.length pts);
      Alcotest.(check bool) "spike visible at its cycle" true
        (List.mem (400, 20.0) pts));
  (* metrics whose sources never appeared are dropped, not zero-filled *)
  Alcotest.(check bool) "no htab gauge, no htab series" true
    (List.assoc_opt "htab_occupancy_pct" series = None)

let test_to_chrome_shape () =
  let _, _, lines = stream_one_run () in
  let tls =
    match Flight.decode_lines lines with Ok l -> l | Error m -> Alcotest.fail m
  in
  let j = Flight.to_chrome ~mhz:100 tls in
  let events =
    match Option.bind (Json.member "traceEvents" j) Json.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents"
  in
  let ph p e =
    match Json.member "ph" e with
    | Some (Json.String s) -> s = p
    | _ -> false
  in
  Alcotest.(check bool) "process metadata" true (List.exists (ph "M") events);
  Alcotest.(check bool) "counter tracks" true (List.exists (ph "C") events);
  Alcotest.(check bool) "incident instant" true (List.exists (ph "i") events)

(* --- batch detect matches the stream ----------------------------------- *)

let test_batch_detect_matches_stream () =
  let _, sk, lines = stream_one_run () in
  let tl =
    match Flight.decode_lines lines with
    | Ok [ tl ] -> tl
    | _ -> Alcotest.fail "decode"
  in
  Alcotest.(check bool)
    "replay --detect over the decoded stream re-fires the same incidents"
    true
    (Flight.detect tl = Flight.incidents sk)

let suite =
  [ Alcotest.test_case "interval metrics" `Quick test_interval_metrics;
    Alcotest.test_case "gauge metrics" `Quick test_gauge_metrics;
    Alcotest.test_case "metric directory" `Quick test_metric_directory;
    Alcotest.test_case "rule validation" `Quick test_rule_validation;
    Alcotest.test_case "rules json round trip" `Quick
      test_rules_json_roundtrip;
    Alcotest.test_case "rules json errors" `Quick test_rules_json_errors;
    Alcotest.test_case "load rules missing file" `Quick
      test_load_rules_missing_file;
    Alcotest.test_case "Above fires, cooldown suppresses" `Quick
      test_above_and_cooldown;
    Alcotest.test_case "Below needs warm-up" `Quick test_below_needs_warmup;
    Alcotest.test_case "Step baseline excludes current" `Quick
      test_step_excludes_current;
    Alcotest.test_case "Step quiet on zero baseline" `Quick
      test_step_quiet_on_zero_baseline;
    Alcotest.test_case "Drop collapse detector" `Quick test_drop;
    Alcotest.test_case "incident codec" `Quick test_incident_codec;
    Alcotest.test_case "stream decode round trip" `Quick
      test_stream_decode_roundtrip;
    Alcotest.test_case "delta encoding is sparse" `Quick
      test_delta_encoding_is_sparse;
    Alcotest.test_case "unclosed run decoded" `Quick test_decode_unclosed_run;
    Alcotest.test_case "begin reopens a run id" `Quick
      test_decode_begin_reopens;
    Alcotest.test_case "decode errors carry line numbers" `Quick
      test_decode_errors_carry_line_numbers;
    Alcotest.test_case "metric series" `Quick test_series;
    Alcotest.test_case "perfetto export shape" `Quick test_to_chrome_shape;
    Alcotest.test_case "batch detect matches stream" `Quick
      test_batch_detect_matches_stream ]
