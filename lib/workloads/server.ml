open Ppc
module Kernel = Kernel_sim.Kernel
module Mm = Kernel_sim.Mm
module Vfs = Kernel_sim.Vfs
module Task = Kernel_sim.Task

type model = Fork_exec | Pool | Shared_mm

let model_name = function
  | Fork_exec -> "fork_exec"
  | Pool -> "pool"
  | Shared_mm -> "shared_mm"

type kind = Compute | Mmap_churn | Pipe_echo | File_read

let kind_name = function
  | Compute -> "compute"
  | Mmap_churn -> "mmap"
  | Pipe_echo -> "pipe"
  | File_read -> "file"

let kinds = [| Compute; Mmap_churn; Pipe_echo; File_read |]

let kind_index = function
  | Compute -> 0
  | Mmap_churn -> 1
  | Pipe_echo -> 2
  | File_read -> 3

let class_names model =
  Array.map (fun kd -> model_name model ^ "/" ^ kind_name kd) kinds

type params = {
  model : model;
  requests : int;
  interarrival : int;
  jitter : int;
  pool_workers : int;
  worker_requests : int;
  mix : int array;
}

let default_params =
  { model = Pool;
    requests = 200;
    interarrival = 120_000;
    jitter = 60_000;
    pool_workers = 4;
    worker_requests = 32;
    mix = [| 5; 2; 2; 1 |] }

(* Process-wide request-count default for drivers that cannot reach the
   params record (the experiment registry builds its own): the --requests
   knob.  200 — the historical hardcoded count — keeps the committed
   baselines byte-identical. *)
let boot_requests_default = ref default_params.requests

let set_boot_requests n =
  if n < 1 then invalid_arg "Server.set_boot_requests: requests must be >= 1";
  boot_requests_default := n

let boot_requests () = !boot_requests_default

type result = {
  perf : Perf.t;
  wall_us : float;
  busy_us : float;
  requests : int;
  hist : Hist.t;
  kind_hists : (string * Hist.t) list;
}

let data_of ~text_pages = Mm.user_text_base + (text_pages lsl Addr.page_shift)

(* dispatcher and worker images; workers are re-exec'd so their address
   spaces churn (the VSID-recycling pressure this workload exists to
   apply) *)
let disp_text = 16
let disp_data = 32
let worker_text = 12
let worker_data = 24

let docroot_pages = 64

let pick_kind rng mix =
  let total = Array.fold_left ( + ) 0 mix in
  let r = Rng.int rng (max 1 total) in
  let n = Array.length kinds in
  let rec walk i acc =
    if i >= n - 1 then kinds.(n - 1)
    else
      let acc = acc + mix.(i) in
      if r < acc then kinds.(i) else walk (i + 1) acc
  in
  walk 0 0

(* The service body, executed in whatever task owns the request.
   [data_ea]/[data_pages] locate that task's data vma (worker image or,
   for shared-mm threads, the dispatcher's). *)
let serve k ~rng ~docroot ~pipe ~data_ea ~data_pages kind =
  match kind with
  | Compute ->
      Kernel.user_run k ~instrs:2_000;
      for _ = 1 to 16 do
        let page = Rng.int rng data_pages in
        Kernel.touch k
          (if Rng.int rng 3 = 0 then Mmu.Store else Mmu.Load)
          (data_ea + (page lsl Addr.page_shift))
      done
  | Mmap_churn ->
      Kernel.user_run k ~instrs:600;
      let buf = Kernel.sys_mmap k ~pages:24 ~writable:true in
      for i = 0 to 23 do
        Kernel.touch k Mmu.Store (buf + (i lsl Addr.page_shift))
      done;
      Kernel.sys_munmap k ~ea:buf ~pages:24
  | Pipe_echo ->
      Kernel.user_run k ~instrs:800;
      let _ = Kernel.sys_pipe_write k pipe ~buf:data_ea ~bytes:512 in
      let _ = Kernel.sys_pipe_read k pipe ~buf:data_ea ~bytes:512 in
      ()
  | File_read ->
      Kernel.user_run k ~instrs:700;
      let buf = Kernel.sys_mmap k ~pages:4 ~writable:true in
      Kernel.sys_file_read k docroot
        ~from_page:(Rng.int rng (docroot_pages - 4))
        ~pages:4 ~buf;
      Kernel.sys_munmap k ~ea:buf ~pages:4

let run k ~params:p =
  let rng = Kernel.rng k in
  let sp = Kernel.span k in
  if Span.enabled sp then Span.set_classes sp (class_names p.model);
  let disp =
    Kernel.spawn k ~text_pages:disp_text ~data_pages:disp_data
      ~stack_pages:4 ()
  in
  let docroot =
    Vfs.create_file (Kernel.vfs k) ~name:"docroot" ~pages:docroot_pages
  in
  let pipe = Kernel.new_pipe k in
  Kernel.switch_to k disp;
  Kernel.user_run k ~instrs:2_000;
  let hist = Hist.create () in
  let kind_hists = Array.map (fun _ -> Hist.create ()) kinds in
  (* fork + exec a worker; the dispatcher must be current *)
  let fresh_worker () =
    let w = Kernel.sys_fork k in
    Kernel.switch_to k w;
    Kernel.sys_exec k ~text_pages:worker_text ~data_pages:worker_data
      ~stack_pages:2;
    Kernel.user_run k ~instrs:500;
    Kernel.switch_to k disp;
    w
  in
  let pool =
    match p.model with
    | Fork_exec -> [||]
    | Pool -> Array.init p.pool_workers (fun _ -> fresh_worker ())
    | Shared_mm ->
        Array.init p.pool_workers (fun _ -> Kernel.spawn_thread k ~peer:disp)
  in
  let served = Array.make (max 1 (Array.length pool)) 0 in
  let worker_data_ea = data_of ~text_pages:worker_text in
  let disp_data_ea = data_of ~text_pages:disp_text in
  let next_arrival = ref (Kernel.cycles k + p.interarrival) in
  for n = 0 to p.requests - 1 do
    let arrival = !next_arrival in
    next_arrival := arrival + p.interarrival + Rng.int rng (max 1 p.jitter);
    let now = Kernel.cycles k in
    (* ahead of the offered load: the machine idles until the request
       arrives.  Behind it: the request queued, and that delay is part
       of its latency (latency = completion - arrival). *)
    if now < arrival then Kernel.idle_for k ~cycles:(arrival - now);
    let kind = pick_kind rng p.mix in
    let ki = kind_index kind in
    let rid = Span.request_begin sp ~cls:ki ~arrival in
    Span.set_current_request sp rid;
    Span.bind_pid sp ~pid:disp.Task.pid ~rid;
    Kernel.user_run k ~instrs:400;
    let recycle = ref (-1) in
    (match p.model with
    | Fork_exec ->
        let child = Kernel.sys_fork k in
        Span.bind_pid sp ~pid:child.Task.pid ~rid;
        Kernel.switch_to k child;
        Kernel.sys_exec k ~text_pages:worker_text ~data_pages:worker_data
          ~stack_pages:2;
        serve k ~rng ~docroot ~pipe ~data_ea:worker_data_ea
          ~data_pages:worker_data kind;
        Kernel.sys_exit k;
        Kernel.switch_to k disp;
        Span.bind_pid sp ~pid:child.Task.pid ~rid:(-1)
    | Pool ->
        let wi = n mod Array.length pool in
        let w = pool.(wi) in
        Span.bind_pid sp ~pid:w.Task.pid ~rid;
        Kernel.switch_to k w;
        serve k ~rng ~docroot ~pipe ~data_ea:worker_data_ea
          ~data_pages:worker_data kind;
        Kernel.switch_to k disp;
        Span.bind_pid sp ~pid:w.Task.pid ~rid:(-1);
        served.(wi) <- served.(wi) + 1;
        if p.worker_requests > 0 && served.(wi) >= p.worker_requests then
          recycle := wi
    | Shared_mm ->
        let wi = n mod Array.length pool in
        let w = pool.(wi) in
        Span.bind_pid sp ~pid:w.Task.pid ~rid;
        Kernel.switch_to k w;
        serve k ~rng ~docroot ~pipe ~data_ea:disp_data_ea
          ~data_pages:disp_data kind;
        Kernel.switch_to k disp;
        Span.bind_pid sp ~pid:w.Task.pid ~rid:(-1));
    Span.request_end sp rid;
    Span.bind_pid sp ~pid:disp.Task.pid ~rid:(-1);
    let lat = Kernel.cycles k - arrival in
    Hist.observe hist lat;
    Hist.observe kind_hists.(ki) lat;
    (* pool maintenance between requests (Apache's MaxRequestsPerChild):
       retire the worker and fork+exec a replacement, churning one more
       address space.  Charged to no request - it happens off-path. *)
    if !recycle >= 0 then begin
      let wi = !recycle in
      Kernel.switch_to k pool.(wi);
      Kernel.sys_exit k;
      Kernel.switch_to k disp;
      pool.(wi) <- fresh_worker ();
      served.(wi) <- 0
    end
  done;
  (* teardown: pool workers exit; shared-mm threads must not (they
     share the dispatcher's mm), so that cast stays parked *)
  (match p.model with
  | Pool ->
      Array.iter
        (fun w ->
          Kernel.switch_to k w;
          Kernel.sys_exit k)
        pool;
      Kernel.switch_to k disp;
      Kernel.sys_exit k
  | Fork_exec ->
      Kernel.switch_to k disp;
      Kernel.sys_exit k
  | Shared_mm -> ());
  let named =
    Array.to_list
      (Array.mapi (fun i h -> (kind_name kinds.(i), h)) kind_hists)
  in
  (hist, named)

let measure ~machine ~policy ?(params = default_params) ?(seed = 42) ?label
    () =
  let k = Kernel.boot ~machine ~policy ~seed () in
  let sp = Kernel.span k in
  if Span.enabled sp then
    Span.set_label sp
      (match label with Some l -> l | None -> model_name params.model);
  let rcd = Kernel.recorder k in
  if Recorder.enabled rcd then
    Recorder.set_label rcd
      (match label with Some l -> l | None -> model_name params.model);
  let before = Perf.snapshot (Kernel.perf k) in
  let hist, kind_hists = run k ~params in
  let perf = Perf.diff ~after:(Perf.snapshot (Kernel.perf k)) ~before in
  let mhz = machine.Machine.mhz in
  { perf;
    wall_us = Cost.us_of_cycles ~mhz perf.Perf.cycles;
    busy_us = Cost.us_of_cycles ~mhz (Perf.busy_cycles perf);
    requests = params.requests;
    hist;
    kind_hists }
