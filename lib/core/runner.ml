type wstat =
  | Exited of int
  | Signaled of int

type outcome =
  | Done of Experiments.table
  | Failed of string
  | Crashed of wstat
  | Timed_out of float
  | Retried of int * outcome

let rec table_of_outcome = function
  | Done t -> Some t
  | Retried (_, o) -> table_of_outcome o
  | Failed _ | Crashed _ | Timed_out _ -> None

(* OCaml renumbers signals (Sys.sigkill is -7, not 9); name the common
   ones so failure tables read like a shell's, not like the runtime's. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigalrm then "SIGALRM"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sigpipe then "SIGPIPE"
  else if s = Sys.sigquit then "SIGQUIT"
  else if s = Sys.sighup then "SIGHUP"
  else Printf.sprintf "signal %d" s

let rec describe = function
  | Done _ -> "ok"
  | Failed m -> "failed: " ^ m
  | Crashed (Exited c) -> Printf.sprintf "worker exited with status %d" c
  | Crashed (Signaled s) -> "worker killed by " ^ signal_name s
  | Timed_out t -> Printf.sprintf "timed out after %gs" t
  | Retried (n, o) ->
      Printf.sprintf "%s (after %d retr%s)" (describe o) n
        (if n = 1 then "y" else "ies")

(* ------------------------------------------------------ fault injection

   MMU_SIM_FAULT holds a comma-separated list of deterministic faults,
   each targeting one experiment id, applied at the moment the
   experiment is about to run (in the worker for forked runs, in-process
   for serial ones):

     kill:<id>        the hosting process SIGKILLs itself
     exit:<id>[:n]    the hosting process _exits with status n (default 3)
     raise:<id>       the experiment raises (becomes a clean [Failed])
     hang:<id>        the experiment blocks forever (until a timeout)

   The supervisor disarms the faults of an experiment before retrying
   it (children forked afterwards inherit the cleaned environment), so
   an injected crash exercises exactly one supervision round and the
   retry then succeeds — which is what makes the recovery paths testable
   deterministically. *)

let fault_env = "MMU_SIM_FAULT"

module Fault = struct
  type kind = Kill | Exit of int | Raise | Hang

  let lower = String.lowercase_ascii

  let parse spec =
    String.split_on_char ',' spec
    |> List.filter_map (fun entry ->
           match String.split_on_char ':' (String.trim entry) with
           | [ "kill"; id ] -> Some (lower id, Kill)
           | [ "exit"; id ] -> Some (lower id, Exit 3)
           | [ "exit"; id; n ] ->
               Some (lower id, Exit (Option.value ~default:3 (int_of_string_opt n)))
           | [ "raise"; id ] -> Some (lower id, Raise)
           | [ "hang"; id ] -> Some (lower id, Hang)
           | _ -> None)

  let active () =
    match Sys.getenv_opt fault_env with
    | None | Some "" -> []
    | Some spec -> parse spec

  (* Run in the process hosting experiment [id], just before it starts. *)
  let fire id =
    match List.assoc_opt (lower id) (active ()) with
    | None -> ()
    | Some Kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | Some (Exit n) -> Unix._exit n
    | Some Raise -> failwith ("injected fault for " ^ id)
    | Some Hang ->
        while true do
          (* interruptible: SIGALRM (the in-process timeout) aborts it *)
          try ignore (Unix.select [] [] [] 3600.0)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done

  (* Drop every fault aimed at [id] from the environment, so workers
     forked from now on (and in-process retries) run it clean. *)
  let disarm id =
    match Sys.getenv_opt fault_env with
    | None | Some "" -> ()
    | Some spec ->
        let keep =
          String.split_on_char ',' spec
          |> List.filter (fun entry ->
                 match String.split_on_char ':' (String.trim entry) with
                 | _ :: target :: _ -> lower target <> lower id
                 | _ -> false)
        in
        Unix.putenv fault_env (String.concat "," keep)
end

(* ------------------------------------------------- payload collection *)

(* Per-experiment observability payloads (span JSON today) are produced
   in whatever process hosts the experiment — a forked worker or the
   parent — by this hook, called right after each attempt with the
   experiment's id.  The payload is marshalled over the same pipe as the
   result, which is what lets span-armed runs keep [--jobs N]: the data
   is drained where it was recorded instead of being stranded in a
   child.  The hook must be installed before [fork] (children inherit
   it) and should also drain any per-experiment instrument registries so
   payloads cannot leak across experiments. *)
let collect_hook : (string -> Json.t option) ref = ref (fun _ -> None)

let collect id = try !collect_hook id with _ -> None

(* ------------------------------------------------------------ attempts *)

let attempt ~seed id f =
  match
    Fault.fire id;
    f ?seed:(Some seed) ()
  with
  | t -> Done t
  | exception e -> Failed (Printexc.to_string e)

exception Attempt_timeout

(* In-process attempt under a wall-clock deadline: SIGALRM raises out of
   the experiment at the next safe point.  Simulation code allocates
   constantly, so delivery is prompt; a blocking syscall (the hang
   fault) is interrupted and the handler's exception propagates. *)
let attempt_timed ~timeout ~seed id f =
  if timeout <= 0.0 then attempt ~seed id f
  else begin
    let prev =
      Sys.signal Sys.sigalrm
        (Sys.Signal_handle (fun _ -> raise Attempt_timeout))
    in
    let arm v =
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_value = v; it_interval = 0.0 })
    in
    arm timeout;
    let o =
      match
        Fault.fire id;
        f ?seed:(Some seed) ()
      with
      | t -> Done t
      | exception Attempt_timeout -> Timed_out timeout
      | exception e -> Failed (Printexc.to_string e)
    in
    arm 0.0;
    Sys.set_signal Sys.sigalrm prev;
    o
  end

(* The one place job-count bounds live: at least one worker, and no more
   than [max_jobs] — forking beyond that wins nothing for a suite of a
   few dozen experiments and risks fd exhaustion on big machines. *)
let min_jobs = 1
let max_jobs = 16
let clamp_jobs n = max min_jobs (min n max_jobs)

(* Observation layers whose data lives in the booting process (traces,
   profilers, shadow checkers) and multi-CPU kernels cannot cross the
   result pipe, so those runs must stay serial.  The CLI asks here which
   of the user's requests forced that, so a --jobs downgrade is never
   silent. *)
let serial_forcers ~tracing ~profiled ~shadow ~cpus =
  List.concat
    [ (if tracing then [ "--trace/--timeline" ] else []);
      (if profiled then [ "--profile" ] else []);
      (if shadow then [ "--shadow" ] else []);
      (if cpus > 1 then [ "--cpus" ] else []) ]

(* First line of [cmd]'s output parsed as a positive int, if any. *)
let probe_int cmd =
  match Unix.open_process_in (cmd ^ " 2>/dev/null") with
  | exception _ -> None
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, int_of_string_opt (String.trim line)) with
      | _, Some n when n >= 1 -> Some n
      | _ -> None)

let default_jobs () =
  (* getconf is POSIX but absent from some minimal images; nproc is the
     coreutils equivalent.  Either failing leaves us serial. *)
  match probe_int "getconf _NPROCESSORS_ONLN" with
  | Some n -> clamp_jobs n
  | None -> (
      match probe_int "nproc" with
      | Some n -> clamp_jobs n
      | None -> min_jobs)

(* --------------------------------------------------------- supervision *)

type job = string * (?seed:int -> unit -> Experiments.table)

(* Parent-side view of one forked worker. *)
type worker = {
  w_pid : int;
  w_fd : Unix.file_descr;
  w_slice : (int * job) list;  (* dealt experiments, in delivery order *)
  w_buf : Buffer.t;  (* bytes read but not yet framed *)
  mutable w_deadline : float;  (* absolute; infinity = no timeout *)
  mutable w_eof : bool;
  mutable w_timed_out : bool;
  mutable w_err : string option;  (* marshal decode error, if any *)
}

(* One pipe per worker; workers marshal each (index, id, outcome) as it
   completes and flush, so every finished experiment survives a later
   crash of its worker.  Results are small (a table of strings), so a
   worker never fills the pipe buffer faster than the parent drains. *)
let spawn ~seed ~timeout slice =
  flush stdout;
  flush stderr;
  let rfd, wfd = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rfd;
      let oc = Unix.out_channel_of_descr wfd in
      List.iter
        (fun (i, (id, f)) ->
          let r = attempt ~seed id f in
          let p = collect id in
          Marshal.to_channel oc (i, id, r, p) [];
          flush oc)
        slice;
      close_out oc;
      (* _exit: skip at_exit (inherited buffers, test reporters) *)
      Unix._exit 0
  | pid ->
      Unix.close wfd;
      {
        w_pid = pid;
        w_fd = rfd;
        w_slice = slice;
        w_buf = Buffer.create 256;
        w_deadline =
          (if timeout > 0.0 then Unix.gettimeofday () +. timeout else infinity);
        w_eof = false;
        w_timed_out = false;
        w_err = None;
      }

(* Extract complete marshal frames from [w]'s buffer.  A header or
   payload that fails to decode is transport corruption, not a result:
   record it and stop consuming — the supervisor kills the worker and
   requeues whatever it never delivered. *)
let drain_frames w ~on_frame =
  let data = Buffer.contents w.w_buf in
  let len = String.length data in
  let b = Bytes.unsafe_of_string data in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if w.w_err <> None || len - !pos < Marshal.header_size then stop := true
    else
      match Marshal.total_size b !pos with
      | exception Failure msg -> w.w_err <- Some msg
      | total when len - !pos < total -> stop := true
      | total -> (
          match
            (Marshal.from_bytes b !pos : int * string * outcome * Json.t option)
          with
          | exception Failure msg -> w.w_err <- Some msg
          | frame ->
              on_frame frame;
              pos := !pos + total)
  done;
  Buffer.clear w.w_buf;
  if w.w_err = None && !pos < len then
    Buffer.add_substring w.w_buf data !pos (len - !pos)

let kill_quietly pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let rec waitpid_retry pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Run [indexed] across [jobs] forked workers, supervising the pipes
   with select.  Returns the delivered results plus, for every
   experiment a worker failed to deliver, the (index, job, provisional
   outcome) triple the caller may retry. *)
let forked_round ~jobs ~timeout ~seed indexed =
  let workers =
    List.init jobs (fun w ->
        spawn ~seed ~timeout
          (List.filteri (fun k _ -> k mod jobs = w) indexed))
  in
  let delivered : (int, string * outcome * Json.t option) Hashtbl.t =
    Hashtbl.create 37
  in
  let active = ref (List.filter (fun w -> w.w_slice <> []) workers) in
  (* workers dealt an empty slice just exit; reap them at the end *)
  let finished = ref [] in
  let chunk = Bytes.create 65536 in
  while !active <> [] do
    let now = Unix.gettimeofday () in
    let tmo =
      if timeout <= 0.0 then -1.0
      else
        List.fold_left
          (fun acc w -> Float.min acc (Float.max 0.0 (w.w_deadline -. now)))
          60.0 !active
    in
    let readable, _, _ =
      try Unix.select (List.map (fun w -> w.w_fd) !active) [] [] tmo
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun w ->
        if List.mem w.w_fd readable then
          match Unix.read w.w_fd chunk 0 (Bytes.length chunk) with
          | 0 -> w.w_eof <- true
          | n ->
              Buffer.add_subbytes w.w_buf chunk 0 n;
              drain_frames w ~on_frame:(fun (i, id, r, p) ->
                  Hashtbl.replace delivered i (id, r, p);
                  if timeout > 0.0 then
                    w.w_deadline <- Unix.gettimeofday () +. timeout);
              if w.w_err <> None then begin
                (* corrupt stream: the worker can no longer be trusted *)
                kill_quietly w.w_pid;
                w.w_eof <- true
              end
          | exception Unix.Unix_error _ -> w.w_eof <- true)
      !active;
    (* deadline enforcement: a worker that has gone [timeout] without
       delivering is hung on its current experiment — kill it and let
       the retry ladder deal with the slice *)
    let now = Unix.gettimeofday () in
    List.iter
      (fun w ->
        if
          (not w.w_eof)
          && now >= w.w_deadline
          && List.exists
               (fun (i, _) -> not (Hashtbl.mem delivered i))
               w.w_slice
        then begin
          kill_quietly w.w_pid;
          w.w_timed_out <- true;
          w.w_eof <- true
        end)
      !active;
    let eof, still = List.partition (fun w -> w.w_eof) !active in
    finished := eof @ !finished;
    active := still
  done;
  let lost =
    List.concat_map
      (fun w ->
        Unix.close w.w_fd;
        let status = waitpid_retry w.w_pid in
        let undelivered =
          List.filter (fun (i, _) -> not (Hashtbl.mem delivered i)) w.w_slice
        in
        match undelivered with
        | [] -> []
        | first :: rest ->
            let head_cause, tail_cause =
              match (w.w_err, w.w_timed_out, status) with
              | Some msg, _, _ ->
                  let c = Failed ("worker result stream corrupt: " ^ msg) in
                  (c, c)
              | None, true, _ ->
                  (* the first undelivered experiment is the hung one;
                     the rest were collateral of the kill *)
                  (Timed_out timeout, Crashed (Signaled Sys.sigkill))
              | None, false, Unix.WSIGNALED s | None, false, Unix.WSTOPPED s
                ->
                  let c = Crashed (Signaled s) in
                  (c, c)
              | None, false, Unix.WEXITED 0 ->
                  let c = Failed "worker exited before delivering a result" in
                  (c, c)
              | None, false, Unix.WEXITED n ->
                  let c = Crashed (Exited n) in
                  (c, c)
            in
            (fst first, snd first, head_cause)
            :: List.map (fun (i, job) -> (i, job, tail_cause)) rest)
      !finished
  in
  (* reap the empty-slice workers too *)
  List.iter
    (fun w ->
      if w.w_slice = [] then begin
        Unix.close w.w_fd;
        ignore (waitpid_retry w.w_pid)
      end)
    workers;
  (Hashtbl.fold (fun i r acc -> (i, r) :: acc) delivered [], lost)

(* ---------------------------------------------------------------- run *)

let default_retries = 2

let run_serial ~timeout ~retries ~seed selected =
  List.map
    (fun (id, f) ->
      let rec go n =
        let o = attempt_timed ~timeout ~seed id f in
        (* collect after every attempt so a retry's payload reflects
           only the final run, not leftovers from the aborted one *)
        let p = collect id in
        match o with
        | Done _ | Failed _ | Crashed _ | Retried _ ->
            ((if n = 0 then o else Retried (n, o)), p)
        | Timed_out _ ->
            if n >= retries then ((if n = 0 then o else Retried (n, o)), p)
            else begin
              Fault.disarm id;
              go (n + 1)
            end
      in
      let o, p = go 0 in
      (id, o, p))
    selected

let run_collect ?(jobs = 1) ?(seed = 42) ?(timeout = 0.0)
    ?(retries = default_retries) selected =
  let retries = max 0 retries in
  let jobs = max min_jobs (min (clamp_jobs jobs) (List.length selected)) in
  if jobs <= 1 then run_serial ~timeout ~retries ~seed selected
  else begin
    let indexed = List.mapi (fun i x -> (i, x)) selected in
    let results : (int, string * outcome * Json.t option) Hashtbl.t =
      Hashtbl.create 37
    in
    let record ~round (i, (id, o, p)) =
      Hashtbl.replace results i
        (id, (if round = 0 then o else Retried (round, o)), p)
    in
    let delivered, lost = forked_round ~jobs ~timeout ~seed indexed in
    List.iter (record ~round:0) delivered;
    (* The retry ladder: each lost experiment is first re-forked (fresh
       workers over just the orphaned slice), and on the final attempt
       run serially in-parent so a systematically crashing worker
       cannot take healthy siblings down with it again. *)
    let rec retry attempt lost =
      match lost with
      | [] -> ()
      | lost when attempt > retries ->
          List.iter
            (fun (i, (id, _), cause) ->
              Hashtbl.replace results i
                ( id,
                  (if retries = 0 then cause else Retried (retries, cause)),
                  None ))
            lost
      | lost ->
          List.iter (fun (_, (id, _), _) -> Fault.disarm id) lost;
          let pairs = List.map (fun (i, p, _) -> (i, p)) lost in
          if attempt < retries then begin
            let jobs' = min jobs (List.length pairs) in
            let delivered, lost' =
              forked_round ~jobs:jobs' ~timeout ~seed pairs
            in
            List.iter (record ~round:attempt) delivered;
            retry (attempt + 1) lost'
          end
          else
            (* last resort: serially, in this process, under SIGALRM *)
            List.iter
              (fun (i, (id, f)) ->
                let o = attempt_timed ~timeout ~seed id f in
                let p = collect id in
                record ~round:attempt (i, (id, o, p)))
              pairs
    in
    retry 1 lost;
    List.map
      (fun (i, (id, _)) ->
        match Hashtbl.find_opt results i with
        | Some r -> r
        | None -> (id, Failed "worker exited before delivering a result", None))
      indexed
  end

let run ?jobs ?seed ?timeout ?retries selected =
  List.map
    (fun (id, o, _payload) -> (id, o))
    (run_collect ?jobs ?seed ?timeout ?retries selected)
