lib/kernel_sim/physmem.mli:
