(* Why did a run get slower?  Diff two results documents, rank the
   counter deltas by contribution (relative deviation, the same measure
   the checker gates on), and join the winners against the attribution
   the documents embed (observability.profile) to name the responsible
   PID/segment.  Turns "numbers moved" into "kernel ITLB pressure in
   segment 0xC moved". *)

type delta = {
  x_id : string;       (* experiment id *)
  x_row : string;      (* row label (first cell of the row) *)
  x_col : string;      (* column header of the differing cell *)
  x_token : int;       (* index of the numeric token within the cell *)
  x_a : float;         (* value in document A *)
  x_b : float;         (* value in document B *)
  x_rel : float;       (* relative deviation, |a-b| / max |a| |b| *)
}

let nth_or l i d = match List.nth_opt l i with Some x -> x | None -> d

(* Every numeric token that differs between two tables of the same
   shape.  Shape mismatches (headers, row/cell/token counts) yield no
   deltas — `check` reports those structurally. *)
let diff_tables ~id ~(a : Experiments.table) ~(b : Experiments.table) =
  let out = ref [] in
  if List.length a.Experiments.rows = List.length b.Experiments.rows then
    List.iteri
      (fun _r (arow, brow) ->
        if List.length arow = List.length brow then begin
          let label = nth_or arow 0 "" in
          List.iteri
            (fun c (acell, bcell) ->
              let an = Baseline.numbers_of_cell acell
              and bn = Baseline.numbers_of_cell bcell in
              if List.length an = List.length bn then
                List.iteri
                  (fun tok (av, bv) ->
                    let rel = Baseline.rel_dev av bv in
                    if rel > 0.0 then
                      out :=
                        { x_id = id;
                          x_row = label;
                          x_col = nth_or a.Experiments.header c
                                    (Printf.sprintf "col %d" (c + 1));
                          x_token = tok;
                          x_a = av;
                          x_b = bv;
                          x_rel = rel }
                        :: !out)
                  (List.combine an bn))
            (List.combine arow brow)
        end)
      (List.combine a.Experiments.rows b.Experiments.rows);
  List.rev !out

(* Largest contribution first; magnitude of the absolute change breaks
   ties so a 2x swing on a big counter outranks one on a tiny counter. *)
let rank deltas =
  List.sort
    (fun d1 d2 ->
      match compare d2.x_rel d1.x_rel with
      | 0 -> compare (Float.abs (d2.x_a -. d2.x_b)) (Float.abs (d1.x_a -. d1.x_b))
      | c -> c)
    deltas

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let describe d =
  let direction = if d.x_b > d.x_a then "+" else "-" in
  Printf.sprintf "%s: %s [%s]: %s -> %s (%s%.1f%%)" d.x_id d.x_row d.x_col
    (fmt_value d.x_a) (fmt_value d.x_b) direction (100.0 *. d.x_rel)

(* --- attribution join ------------------------------------------------- *)

(* The raw JSON of one experiment entry in a results document. *)
let experiment_json doc ~id =
  match Json.member "experiments" doc with
  | Some (Json.List entries) ->
      List.find_opt
        (fun e ->
          match Option.bind (Json.member "id" e) Json.to_string_opt with
          | Some i -> i = id
          | None -> false)
        entries
  | _ -> None

(* The heaviest embedded attribution accounts for one experiment, as
   human-readable "pid 0 seg 0xC itlb: 123 misses, 45678 cycles" lines
   (cost order).  Empty when the document was produced without
   --profile. *)
let attribution_lines ?(top = 3) doc ~id =
  match
    Option.bind (experiment_json doc ~id) (fun e ->
        Option.bind (Json.member "observability" e) (fun o ->
            Option.bind (Json.member "profile" o) (Json.member "attribution")))
  with
  | Some (Json.List accounts) ->
      let parsed =
        List.filter_map
          (fun a ->
            let int k = Option.bind (Json.member k a) Json.to_int_opt in
            let str k = Option.bind (Json.member k a) Json.to_string_opt in
            match (int "pid", int "segment", str "kind", int "count", int "cost")
            with
            | Some pid, Some seg, Some kind, Some count, Some cost ->
                Some (pid, seg, kind, count, cost)
            | _ -> None)
          accounts
      in
      let sorted =
        List.sort (fun (_, _, _, _, c1) (_, _, _, _, c2) -> compare c2 c1)
          parsed
      in
      List.filteri (fun i _ -> i < top) sorted
      |> List.map (fun (pid, seg, kind, count, cost) ->
             Printf.sprintf "pid %d seg 0x%X %s: %d misses, %d cycles" pid seg
               kind count cost)
  | _ -> []

(* --- span join -------------------------------------------------------- *)

(* When both documents embed observability.spans for an experiment,
   name the (config, request class) whose tail moved most: rank every
   class's p999 change (falling back to p99 where p999 did not move)
   by the same relative deviation the checker gates on. *)
let span_tail_lines ?(top = 3) ~a_json ~b_json ~id () =
  let spans_of doc =
    Option.bind (experiment_json doc ~id) (fun e ->
        Option.bind (Json.member "observability" e) (fun o ->
            Option.bind (Json.member "spans" o) Json.to_list_opt))
  in
  let config r = Option.bind (Json.member "config" r) Json.to_string_opt in
  (* (class, p999, p99) for the overall histogram and every class *)
  let tails r =
    let entry name h =
      match
        ( Option.bind (Json.member "p999" h) Json.to_int_opt,
          Option.bind (Json.member "p99" h) Json.to_int_opt )
      with
      | Some p999, Some p99 -> Some (name, p999, p99)
      | _ -> None
    in
    let overall =
      Option.bind (Json.member "overall" r) (entry "overall")
    in
    let classes =
      match Option.bind (Json.member "classes" r) Json.to_list_opt with
      | None -> []
      | Some cs ->
          List.filter_map
            (fun c ->
              Option.bind
                (Option.bind (Json.member "class" c) Json.to_string_opt)
                (fun n -> entry n c))
            cs
    in
    match overall with Some o -> o :: classes | None -> classes
  in
  match (spans_of a_json, spans_of b_json) with
  | Some sa, Some sb ->
      let moved =
        List.concat_map
          (fun ra ->
            match config ra with
            | None -> []
            | Some cfg -> (
                match List.find_opt (fun rb -> config rb = Some cfg) sb with
                | None -> []
                | Some rb ->
                    let tb = tails rb in
                    List.filter_map
                      (fun (cls, a999, a99) ->
                        match
                          List.find_opt (fun (c, _, _) -> c = cls) tb
                        with
                        | None -> None
                        | Some (_, b999, b99) ->
                            let metric, av, bv =
                              if a999 <> b999 then ("p999", a999, b999)
                              else ("p99", a99, b99)
                            in
                            let rel =
                              Baseline.rel_dev (float_of_int av)
                                (float_of_int bv)
                            in
                            if rel > 0.0 then
                              Some (cfg, cls, metric, av, bv, rel)
                            else None)
                      (tails ra)))
          sa
      in
      let ranked =
        List.sort
          (fun (_, _, _, _, _, r1) (_, _, _, _, _, r2) -> compare r2 r1)
          moved
      in
      List.filteri (fun i _ -> i < top) ranked
      |> List.map (fun (cfg, cls, metric, av, bv, rel) ->
             Printf.sprintf "%s %s %s: %d -> %d cycles (%s%.1f%%)" cfg cls
               metric av bv
               (if bv > av then "+" else "-")
               (100.0 *. rel))
  | _ -> []

(* --- whole-document explanation --------------------------------------- *)

type report = {
  rep_delta : delta;
  rep_attribution : string list;
      (* heaviest accounts of the experiment the delta belongs to, from
         whichever document embeds attribution (B wins) *)
  rep_spans : string list;
      (* the request classes whose tail moved most, when both documents
         embed spans for this experiment *)
}

let explain_docs ?(top = 10) ~a_doc ~a_json ~b_doc ~b_json () =
  let ids_b = List.map fst b_doc.Baseline.d_entries in
  let common =
    List.filter (fun (id, _) -> List.mem id ids_b) a_doc.Baseline.d_entries
  in
  let deltas =
    List.concat_map
      (fun (id, ta) ->
        let tb = List.assoc id b_doc.Baseline.d_entries in
        diff_tables ~id ~a:ta ~b:tb)
      common
  in
  let ranked = List.filteri (fun i _ -> i < top) (rank deltas) in
  List.map
    (fun d ->
      let attr =
        match attribution_lines b_json ~id:d.x_id with
        | [] -> attribution_lines a_json ~id:d.x_id
        | l -> l
      in
      { rep_delta = d;
        rep_attribution = attr;
        rep_spans = span_tail_lines ~a_json ~b_json ~id:d.x_id () })
    ranked

let render_report r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (describe r.rep_delta);
  Buffer.add_char buf '\n';
  List.iter
    (fun line -> Buffer.add_string buf ("    attribution: " ^ line ^ "\n"))
    r.rep_attribution;
  List.iter
    (fun line -> Buffer.add_string buf ("    tail moved: " ^ line ^ "\n"))
    r.rep_spans;
  Buffer.contents buf
