test/test_reproduction.ml: Alcotest Kernel_sim Machine Mmu_tricks Perf Ppc Printf Workloads
