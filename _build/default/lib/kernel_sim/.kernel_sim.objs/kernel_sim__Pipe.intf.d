lib/kernel_sim/pipe.mli:
