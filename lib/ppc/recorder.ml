(* The flight recorder: bounded-memory streaming telemetry.

   Where Trace keeps an event ring and Profile keeps running
   attributions, this layer snapshots the *whole* observability state —
   the Perf counters plus a set of named integer gauge vectors (htab
   occupancy and chain histogram, TLB census, per-CPU miss slices, run
   queue depths, span percentiles-so-far) — on a fixed simulated-cycle
   cadence, §5.2's "watch the table while it runs" loop as
   infrastructure.

   Cost discipline is the Trace/Profile one exactly: [next_sample] is
   [max_int] unless armed, so the disabled cost in [Memsys.charge] is a
   single integer compare.  Recording is observation only — no cycles
   charged, no RNG draws, no cache traffic — so an armed run's counters
   are byte-identical to a bare run at the same seed.

   Memory is bounded: retained samples live in a flat array capped at
   [cap]; on overflow the recorder *decimates* — keeps every other
   sample and doubles the cadence — so an arbitrarily long run holds at
   most [cap] samples at a deterministic, self-coarsening resolution
   (the classic flight-recorder trick).  Consumers that want the full
   stream at the original cadence hook [set_on_sample] and write each
   sample out as it fires. *)

type sample = {
  s_cycle : int;
  s_perf : Perf.t;  (* a [Perf.snapshot]: immutable copy *)
  s_gauges : (string * int array) list;  (* source order; arrays owned *)
}

type t = {
  perf : Perf.t;  (* cycle source; never written *)
  mutable next_sample : int;  (* max_int = disabled *)
  mutable every : int;  (* current cadence (doubles on decimation) *)
  mutable cap : int;  (* retained-sample bound *)
  mutable label : string;
  run_id : int;
  mutable sources : (string * (unit -> int array)) list;  (* install order *)
  mutable samples : sample array;
  mutable len : int;
  mutable total : int;  (* samples ever taken, pre-decimation *)
  mutable on_sample : (t -> sample -> unit) option;
}

let default_every = 1_000_000
let default_cap = 4096

let dummy_sample = { s_cycle = 0; s_perf = Perf.create (); s_gauges = [] }

let run_counter = ref 0

let create_plain ~perf =
  incr run_counter;
  { perf;
    next_sample = max_int;
    every = default_every;
    cap = default_cap;
    label = "";
    run_id = !run_counter;
    sources = [];
    samples = [||];
    len = 0;
    total = 0;
    on_sample = None }

(* --- lifecycle --------------------------------------------------------- *)

let enable ?(every = default_every) ?(cap = default_cap) t =
  if every < 1 then invalid_arg "Recorder.enable: every must be >= 1";
  if cap < 2 then invalid_arg "Recorder.enable: cap must be >= 2";
  t.every <- every;
  t.cap <- cap;
  t.len <- 0;
  t.total <- 0;
  if Array.length t.samples < cap then
    t.samples <- Array.make cap dummy_sample;
  t.next_sample <- t.perf.Perf.cycles + every

let disable t = t.next_sample <- max_int
let enabled t = t.next_sample <> max_int

let set_label t label = t.label <- label
let label t = t.label
let run_id t = t.run_id
let every t = t.every
let cap t = t.cap

let set_on_sample t f = t.on_sample <- Some f

(* --- gauge sources ----------------------------------------------------- *)

(* Installed by the subsystems that own the state (Memsys, Mmu, Sched)
   at creation time; only ever called inside [take_sample], so an
   expensive source costs nothing until the recorder is armed.
   Re-installing a name replaces the source in place (a workload that
   builds a second scheduler on the same kernel re-points the gauge at
   the live one) without disturbing the gauge order. *)
let add_source t ~name f =
  if List.mem_assoc name t.sources then
    t.sources <-
      List.map (fun (n, g) -> if n = name then (n, f) else (n, g)) t.sources
  else t.sources <- t.sources @ [ (name, f) ]

let source_names t = List.map fst t.sources

(* --- sampling ---------------------------------------------------------- *)

(* Halve the retained stream: keep samples 0, 2, 4, ... and double the
   cadence.  Deterministic, so two runs of the same seed decimate at
   the same points. *)
let decimate t =
  let kept = (t.len + 1) / 2 in
  for i = 0 to kept - 1 do
    t.samples.(i) <- t.samples.(2 * i)
  done;
  for i = kept to t.len - 1 do
    t.samples.(i) <- dummy_sample
  done;
  t.len <- kept;
  t.every <- t.every * 2

let take_sample t =
  let s =
    { s_cycle = t.perf.Perf.cycles;
      s_perf = Perf.snapshot t.perf;
      s_gauges = List.map (fun (name, f) -> (name, f ())) t.sources }
  in
  if t.len >= t.cap then decimate t;
  t.samples.(t.len) <- s;
  t.len <- t.len + 1;
  t.total <- t.total + 1;
  (match t.on_sample with Some f -> f t s | None -> ());
  t.next_sample <- t.perf.Perf.cycles + t.every

(* --- inspection -------------------------------------------------------- *)

let length t = t.len
let total t = t.total
let sample t i =
  if i < 0 || i >= t.len then invalid_arg "Recorder.sample";
  t.samples.(i)

let samples t = Array.to_list (Array.sub t.samples 0 t.len)
let iter t f =
  for i = 0 to t.len - 1 do
    f t.samples.(i)
  done

(* --- process-wide boot defaults ---------------------------------------- *)

(* The experiment driver cannot reach the kernels the registry boots, so
   it arms these; every recorder created afterwards starts enabled and
   registers itself for later collection — the Trace/Profile/Span/Shadow
   discipline, which survives [Unix.fork] because forked workers inherit
   the armed globals. *)
let boot_defaults : (int * int) option ref = ref None
let registered_rev : t list ref = ref []
let boot_attach : (t -> unit) option ref = ref None

let set_boot_defaults ?(every = default_every) ?(cap = default_cap) ~enabled
    () =
  boot_defaults := (if enabled then Some (every, cap) else None)

let boot_enabled () = !boot_defaults <> None

(* Layers above Ppc (the Flight streamer/detectors live in Mmu_tricks)
   hook every boot-armed recorder at creation time without Ppc depending
   on them. *)
let set_boot_attach f = boot_attach := f

let drain_registered () =
  let l = List.rev !registered_rev in
  registered_rev := [];
  l

let create ~perf =
  let t = create_plain ~perf in
  (match !boot_defaults with
  | None -> ()
  | Some (every, cap) ->
      enable ~every ~cap t;
      registered_rev := t :: !registered_rev;
      (match !boot_attach with Some f -> f t | None -> ()));
  t
