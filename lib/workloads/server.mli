(** A server-shaped workload: requests, service models, tail latency.

    The paper's measurements are microbenchmarks and batch workloads;
    this is the production shape those optimizations serve — a request
    loop whose {e tail} latency is what an operator actually budgets.
    A dispatcher accepts a deterministic arrival process (base
    inter-arrival plus seeded jitter) and hands each request to one of
    three service models:

    - {!Fork_exec}: a fresh process per request (inetd / CGI) — fork,
      exec, serve, exit.  Maximum address-space churn: every request
      retires a context, so VSID recycling and flush policy dominate.
    - {!Pool}: pre-forked workers, each recycled after
      [worker_requests] requests (Apache's MaxRequestsPerChild) —
      steady-state switching with periodic churn.
    - {!Shared_mm}: thread-like tasks sharing the dispatcher's address
      space ({!Kernel.spawn_thread}) — switches stay in one context.

    Requests draw a kind from a weighted mix — compute, mmap churn
    (the §7 flush story on the request path), pipe echo, page-cache
    file reads (cold pages stall in the idle task) — and their
    completion latency [finish - arrival] {e includes queueing delay},
    so a config that serves slowly fattens its own tail.

    Latency histograms are recorded by the workload itself and are
    always on, so result tables are identical whether or not
    {!Ppc.Span} is armed; when spans {e are} armed the workload also
    drives the request lifecycle (classes, begin/bind/end) for
    per-request breakdowns. *)

module Kernel = Kernel_sim.Kernel

type model = Fork_exec | Pool | Shared_mm

val model_name : model -> string
(** ["fork_exec"], ["pool"], ["shared_mm"]. *)

type kind = Compute | Mmap_churn | Pipe_echo | File_read

val kind_name : kind -> string
val kinds : kind array
val kind_index : kind -> int

val class_names : model -> string array
(** Span class-name table for one run: ["<model>/<kind>"] per kind,
    indexed by {!kind_index}. *)

type params = {
  model : model;
  requests : int;        (** total requests served *)
  interarrival : int;    (** base cycles between arrivals *)
  jitter : int;          (** seeded uniform jitter added per gap *)
  pool_workers : int;    (** pool size (Pool and Shared_mm) *)
  worker_requests : int; (** Pool: recycle after this many (0: never) *)
  mix : int array;       (** kind weights, indexed by {!kind_index} *)
}

val default_params : params

val set_boot_requests : int -> unit
(** Process-wide request-count default for drivers that cannot reach the
    params record (the experiment registry builds its own) — the CLI's
    [--requests] knob.  The default, 200, keeps the committed baselines
    byte-identical.  Forked runner workers inherit the armed value.
    @raise Invalid_argument below 1. *)

val boot_requests : unit -> int

type result = {
  perf : Ppc.Perf.t;
  wall_us : float;
  busy_us : float;
  requests : int;
  hist : Ppc.Hist.t;     (** completion latency (cycles), all requests *)
  kind_hists : (string * Ppc.Hist.t) list;  (** latency per kind *)
}

val run : Kernel.t -> params:params -> Ppc.Hist.t * (string * Ppc.Hist.t) list
(** Drive the request loop on a booted kernel; returns the latency
    histograms for callers that measure around it. *)

val measure :
  machine:Ppc.Machine.t ->
  policy:Kernel_sim.Policy.t ->
  ?params:params ->
  ?seed:int ->
  ?label:string ->
  unit ->
  result
(** Boot, run, report.  [label] tags the kernel's span recorder (when
    armed) with the configuration name exporters group by; defaults to
    {!model_name}. *)
