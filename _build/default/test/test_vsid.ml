(* VSID allocation: strategies, zombies, scatter. *)
open Ppc
module V = Kernel_sim.Vsid_alloc

let test_pid_based () =
  let v = V.create ~source:V.Pid_based ~multiplier:1 in
  let c = V.new_context v ~pid:7 in
  Alcotest.(check int) "ctx is pid" 7 c;
  Alcotest.(check bool) "vsid live" true (V.is_live v (V.vsid v ~ctx:c ~sr:0))

let test_counter_monotonic () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let a = V.new_context v ~pid:10 in
  let b = V.new_context v ~pid:10 in
  Alcotest.(check bool) "fresh ids" true (a <> b);
  Alcotest.(check int) "two live contexts" 2 (V.live_contexts v)

let test_renew_creates_zombie () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let c = V.new_context v ~pid:1 in
  let old_vsid = V.vsid v ~ctx:c ~sr:3 in
  let c' = V.renew_context v ~old_ctx:c ~pid:1 in
  Alcotest.(check bool) "new id" true (c <> c');
  Alcotest.(check bool) "old vsid is zombie" true (V.is_zombie v old_vsid);
  Alcotest.(check bool) "new vsid live" true
    (V.is_live v (V.vsid v ~ctx:c' ~sr:3));
  Alcotest.(check int) "still one live context" 1 (V.live_contexts v)

let test_pid_cannot_renew () =
  let v = V.create ~source:V.Pid_based ~multiplier:1 in
  let c = V.new_context v ~pid:1 in
  match V.renew_context v ~old_ctx:c ~pid:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Pid_based renew must fail"

let test_retire () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let c = V.new_context v ~pid:1 in
  let vsid = V.vsid v ~ctx:c ~sr:0 in
  V.retire_context v c;
  Alcotest.(check bool) "zombie after retire" true (V.is_zombie v vsid);
  Alcotest.(check int) "no live contexts" 0 (V.live_contexts v)

let test_kernel_always_live () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  for sr = 12 to 15 do
    let kv = V.kernel_vsid ~sr in
    Alcotest.(check bool) "kernel vsid live" true (V.is_live v kv);
    Alcotest.(check bool) "is_kernel" true (V.is_kernel kv)
  done;
  Alcotest.(check bool) "user vsid is not kernel" false
    (V.is_kernel (V.vsid v ~ctx:(V.new_context v ~pid:1) ~sr:0))

let test_vsid_encodes_segment () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let c = V.new_context v ~pid:1 in
  let v0 = V.vsid v ~ctx:c ~sr:0 in
  for sr = 0 to 15 do
    Alcotest.(check int) "segment selects the top nibble"
      ((sr lsl 20) lor v0)
      (V.vsid v ~ctx:c ~sr)
  done;
  (* different contexts get different low bits *)
  let c2 = V.new_context v ~pid:2 in
  Alcotest.(check bool) "contexts disjoint" true
    (V.vsid v ~ctx:c2 ~sr:0 <> v0)

(* §5.2: hash-scatter quality.  Many processes with identical address
   layouts: the tuned multiplier must spread their PTEs across far more
   PTEGs than the naive one. *)
let pteg_coverage ~multiplier ~n_procs ~pages =
  let v = V.create ~source:V.Pid_based ~multiplier in
  let n_ptegs = 2048 in
  let seen = Hashtbl.create 1024 in
  for pid = 1 to n_procs do
    let ctx = V.new_context v ~pid in
    for page = 0 to pages - 1 do
      (* pages in segment 0, identical layout in every process *)
      let vsid = V.vsid v ~ctx ~sr:0 in
      let h = Pte.hash_primary ~n_ptegs ~vsid ~page_index:page in
      Hashtbl.replace seen h ()
    done
  done;
  Hashtbl.length seen

let test_scatter_beats_naive () =
  let naive = pteg_coverage ~multiplier:1 ~n_procs:32 ~pages:32 in
  let tuned =
    pteg_coverage ~multiplier:V.scatter_multiplier ~n_procs:32 ~pages:32
  in
  Alcotest.(check bool)
    (Printf.sprintf "tuned (%d PTEGs) covers >2x naive (%d)" tuned naive)
    true
    (tuned > 2 * naive)

let prop_vsid_liveness_consistent =
  QCheck.Test.make ~name:"issued vsids are live until retired" ~count:200
    QCheck.(int_bound 1000)
    (fun pid ->
      let v = V.create ~source:V.Context_counter ~multiplier:097 in
      let c = V.new_context v ~pid in
      let ok = ref true in
      for sr = 0 to 11 do
        if not (V.is_live v (V.vsid v ~ctx:c ~sr)) then ok := false
      done;
      V.retire_context v c;
      for sr = 0 to 11 do
        if V.is_live v (V.vsid v ~ctx:c ~sr) then ok := false
      done;
      !ok)

let test_multiplier_validation () =
  match V.create ~source:V.Pid_based ~multiplier:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive multiplier must be rejected"

let suite =
  [ Alcotest.test_case "pid based" `Quick test_pid_based;
    Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
    Alcotest.test_case "renew creates zombie" `Quick
      test_renew_creates_zombie;
    Alcotest.test_case "pid cannot renew" `Quick test_pid_cannot_renew;
    Alcotest.test_case "retire" `Quick test_retire;
    Alcotest.test_case "kernel vsids always live" `Quick
      test_kernel_always_live;
    Alcotest.test_case "segment in vsid" `Quick test_vsid_encodes_segment;
    Alcotest.test_case "scatter beats naive (§5.2)" `Quick
      test_scatter_beats_naive;
    Alcotest.test_case "multiplier validation" `Quick
      test_multiplier_validation;
    QCheck_alcotest.to_alcotest prop_vsid_liveness_consistent ]
