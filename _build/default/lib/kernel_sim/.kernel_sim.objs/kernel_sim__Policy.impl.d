lib/kernel_sim/policy.ml: Ppc Printf String Vsid_alloc
