lib/workloads/parmake.mli: Kernel_sim Ppc
