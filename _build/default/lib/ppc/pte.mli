(** Page table entries and the PowerPC PTEG hash.

    A PTE associates a (VSID, page index) pair with a 20-bit real page
    number plus protection and storage-control bits.  The hashed page table
    ("htab") is organised in {e PTE groups} (PTEGs) of eight entries; a
    primary hash selects one PTEG and its one's-complement selects the
    secondary (overflow) PTEG, exactly as in the 603/604 user's manuals. *)

(** Page protection, from the PP bits. *)
type protection =
  | Read_write
  | Read_only
  | No_access

(** WIMG storage-control bits.  Only [i] (cache-inhibited) influences the
    simulation; the others are carried for fidelity. *)
type wimg = {
  write_through : bool;
  cache_inhibited : bool;
  memory_coherent : bool;
  guarded : bool;
}

val wimg_default : wimg
(** Cacheable, write-back, coherent, not guarded. *)

val wimg_uncached : wimg
(** Cache-inhibited ([i] set): accesses through this mapping bypass the
    data cache. *)

type t = {
  mutable valid : bool;
  mutable vsid : int;          (** 24-bit virtual segment id. *)
  mutable page_index : int;    (** 16-bit page index within the segment. *)
  mutable rpn : int;           (** 20-bit real (physical) page number. *)
  mutable secondary : bool;    (** H bit: entry lives in its secondary PTEG. *)
  mutable referenced : bool;   (** R bit. *)
  mutable changed : bool;      (** C bit. *)
  mutable wimg : wimg;
  mutable protection : protection;
}

val make :
  ?secondary:bool ->
  ?wimg:wimg ->
  ?protection:protection ->
  vsid:int ->
  page_index:int ->
  rpn:int ->
  unit ->
  t
(** [make ~vsid ~page_index ~rpn ()] builds a valid PTE with default
    storage control and read-write protection. *)

val invalid : unit -> t
(** A fresh invalid entry (all fields zeroed). *)

val matches : t -> vsid:int -> page_index:int -> bool
(** [matches pte ~vsid ~page_index] holds when [pte] is valid and tags
    match — the hardware comparison performed during a table search. *)

val vpn : t -> Addr.vpn
(** [vpn pte] is the virtual page number the entry translates. *)

val hash_primary : n_ptegs:int -> vsid:int -> page_index:int -> int
(** [hash_primary ~n_ptegs ~vsid ~page_index] is the primary PTEG index:
    the low 19 bits of the VSID XORed with the page index, folded into
    [n_ptegs] (which must be a power of two). *)

val hash_secondary : n_ptegs:int -> primary:int -> int
(** [hash_secondary ~n_ptegs ~primary] is the one's complement of the
    primary hash under the same fold — the overflow PTEG. *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
