test/test_kparams.ml: Alcotest Kernel_sim List Ppc Printf Segment
