(** The reproduction experiments as a library.

    Every table and measured claim of the paper is a function here
    returning a structured {!table} (title, header, rows, notes), so the
    results can be consumed programmatically — the bench harness prints
    them, tests probe them, and downstream users can rerun any experiment
    against their own policies.

    All experiments are deterministic in [seed] (default 42).  Each boots
    its own kernel(s); expect hundreds of milliseconds to a few seconds
    of real time per call (the kbuild-based ones are the slow ones). *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val print : table -> unit
(** Render with {!Report.section}/{!Report.table}. *)

val to_csv : table -> string
(** The same table as CSV (header row first; cells quoted as needed). *)

val to_json : ?id:string -> ?section:string -> ?what:string -> table -> Json.t
(** The same table as JSON ([title]/[header]/[rows]/[notes], plus the
    optional registry metadata when given).  Inverse of {!of_json}. *)

val of_json : Json.t -> (table, string) result
(** Decode a table from {!to_json}'s representation (extra fields such
    as ["id"] are ignored; ["notes"] may be absent). *)

(** {1 The paper's tables} *)

val table1 : ?seed:int -> unit -> table
(** Table 1: LmBench summary for direct (no-htab) TLB reloads, with the
    paper's values inline (measured/paper cells). *)

val table2 : ?seed:int -> unit -> table
(** Table 2: LmBench summary for tunable TLB range flushing. *)

val table3 : ?seed:int -> unit -> table
(** Table 3: the OS comparison (Linux/PPC optimized and unoptimized vs
    the Rhapsody/MkLinux/AIX personalities). *)

(** {1 In-text experiments} *)

val e1 : ?seed:int -> unit -> table
(** §5.1: BAT-mapping the kernel (TLB misses, htab misses, kernel TLB
    share, compile time). *)

val e2 : ?seed:int -> unit -> table
(** §5.2: VSID scatter vs htab hot spots. *)

val e3 : ?seed:int -> unit -> table
(** §6.1: fast reload handlers (context switch, pipe latency idle and
    loaded, user wall-clock). *)

val e6 : ?seed:int -> unit -> table
(** §7: idle-task zombie reclaim (evict ratio, occupancy, hit rate). *)

val e7 : ?seed:int -> unit -> table
(** §9: the four page-clearing designs. *)

val e8 : ?seed:int -> unit -> table
(** §8 ablation: cache-inhibited page-table references. *)

val e10 : ?seed:int -> unit -> table
(** §7: the range-flush cutoff sweep (the 20-page knee). *)

(** {1 Proposals, future work and extras} *)

val e11 : ?seed:int -> unit -> table
(** §5.1 proposal, implemented: the per-process frame-buffer BAT. *)

val e12 : ?seed:int -> unit -> table
(** §10.1 future work: locking the caches during the idle task. *)

val e13 : ?seed:int -> unit -> table
(** §10.2 future work: context-switch cache preloads. *)

val e14 : ?seed:int -> unit -> table
(** §1's headline on the multiuser mix. *)

val e15 : ?seed:int -> unit -> table
(** §7's sizing remark: the hash-table size sweep. *)

val e16 : ?seed:int -> unit -> table
(** §7 ablation: replacement policies vs the idle reclaim. *)

val ex1 : ?seed:int -> unit -> table
(** Extra: LmBench across all modeled processors (601 through 750). *)

val ex2 : ?seed:int -> unit -> table
(** Extra: parallel make under the scheduler (I/O overlap vs -jN). *)

val ex4 : ?seed:int -> unit -> table
(** Extra: lat_ctx's working-set sweep — context-switch cost vs the
    footprint each process re-touches, on a 603 (128-entry TLB) and a
    604 (256), showing where TLB reach runs out. *)

val ex5 : ?seed:int -> unit -> table
(** Extra: the §10 methodology itself — the optimization ladder applied
    one step at a time on the multiuser mix, cumulative gains shown
    (and, as the paper warns, the steps do not sum). *)

val ex6 : ?seed:int -> unit -> table
(** Extra: the §4 methodology — key conclusions re-measured across five
    seeds (the simulation's analogue of the paper's 10+ averaged runs),
    reported as min/mean/max. *)

val ex7 : ?seed:int -> unit -> table
(** Extra: keystroke wake-to-done latency while a compile runs — the
    interactive-feel measurement, unoptimized vs optimized kernels. *)

val e20 : ?seed:int -> unit -> table
(** Long horizon (ROADMAP item 3): the fork/exec server driven across
    the 20-bit context-counter wrap.  The counter is pre-aged
    ({!Kernel_sim.Kernel.age_address_spaces}) to [ctx_space - requests]
    ids so the wrap — and its flush-everything escape hatch — fires near
    the midpoint of the run at any requested length.  Request count
    comes from {!Workloads.Server.boot_requests} (the [--requests]
    knob); not part of {!registry}. *)

val d1 : ?seed:int -> unit -> table
(** Diagnostic: fork/COW/exec flush stress.  Concentrates the
    translation sequences a skipped TLB invalidate corrupts under the
    BAT + precise-flush policy where nothing else masks a stale entry;
    run under [--shadow] with [MMU_SIM_BUG=stale-tlb] it proves the
    shadow checker fails loudly.  Not part of {!registry}. *)

(** {1 The registry}

    Every experiment as a first-class entry: id, short name, the paper
    section it reproduces, a one-line description, and the function.
    The CLI, the bench harness, the parallel {!Runner} and
    [docs/EXPERIMENTS_GUIDE.md] are all driven from this list. *)

type spec = {
  id : string;  (** "T1".."T3", "E1".."E16", "EX1".."EX7" *)
  name : string;  (** short human title, without the id *)
  section : string;  (** paper section, e.g. "sec 5.1", or "extra" *)
  what : string;  (** one-line description of what it measures *)
  run : ?seed:int -> unit -> table;
}

val registry : spec list
(** All experiments in canonical (paper) order. *)

val diagnostics : spec list
(** Diagnostic workloads ({!d1}): runnable by name, excluded from
    default sweeps so results documents and baselines are unchanged. *)

val long_horizon : spec list
(** Long-horizon runs ({!e20}): runnable by name, excluded from default
    sweeps and baselines — their request counts come from the
    [--requests] knob, so their tables are only comparable at a stated
    count. *)

val check_unique : spec list -> unit
(** Reject duplicate experiment ids (case-insensitively, since {!find}
    is case-insensitive).  Runs over
    [registry @ diagnostics @ long_horizon] at module load, so a
    drafting slip like the historical E15-E17 double-booking fails the
    build instead of silently shadowing an experiment.
    @raise Invalid_argument naming both colliding ids. *)

val find : string -> spec option
(** Look up by id, case-insensitively, in {!registry}, {!diagnostics}
    then {!long_horizon}. *)

val all : (string * (?seed:int -> unit -> table)) list
(** [registry] as (id, run) pairs — the shape the bench harness and the
    {!Runner} consume. *)
