lib/workloads/refgen.ml: Addr Ppc Rng
