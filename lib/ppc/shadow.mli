(** The shadow reference MMU: a sanitizer for the translation fast path.

    The fast path answers an access from the BATs, the TLBs or the
    hashed page table — structures that are all {e caches} of the Linux
    page tables and can go stale if a flush is skipped, a VSID is
    recycled too early, or an htab eviction loses an invalidate.  The
    shadow is a cache-free, cost-free reference translator: it resolves
    the same effective address against the architectural state only
    (BAT registers, then the backing page-table walk) and compares the
    resulting physical address, the fault/permission decision and the
    cache-inhibit attribute with what the fast path produced.

    When a {!t} is attached to an {!Mmu}, every [Mmu.access] is
    cross-validated; a disagreement is recorded as a {!divergence}
    carrying the full event context — pid, VSID, EA, access kind, which
    structure answered on each side, and the most recent flush
    operations (the usual suspects when a translation goes stale).

    Checking is observation only: the reference translation charges no
    cycles, touches no cache, draws no random numbers and mutates no
    MMU state, so a shadowed run's Perf counters are byte-identical to
    an unshadowed run at the same seed.

    This module holds only the checker state; the reference translator
    itself lives in {!Mmu} (it needs the BATs, segments and backing),
    which also derives [Mmu.probe] from it. *)

(** Access kind, mirroring [Mmu.access_kind] (duplicated here so this
    module stays below {!Mmu} in the dependency order). *)
type kind =
  | Fetch
  | Load
  | Store

val kind_name : kind -> string

(** Which structure produced an answer. *)
type structure =
  | Bat            (** block address translation hit *)
  | Tlb            (** split TLB hit (or a TLB-resident protection fault) *)
  | Htab           (** hashed-page-table hit during reload *)
  | Page_table     (** the backing Linux page-table walk *)
  | No_translation (** nothing mapped the address *)

val structure_name : structure -> string

(** One side's verdict for an access. *)
type outcome = {
  pa : int option;  (** translated physical address; [None] = fault *)
  inhibited : bool; (** cache-inhibit attribute ([false] when faulting) *)
  answered : structure;
}

val agree : outcome -> outcome -> bool
(** Same fault/no-fault decision, same physical address, and — when both
    translate — the same cache-inhibit bit.  [answered] is context, not
    part of the comparison: a TLB hit and a page-table walk that produce
    the same translation agree. *)

(** A recent flush operation, kept for divergence context. *)
type flush_event = {
  f_what : string;  (** "flush-page", "context-reset", ... *)
  f_vsid : int;
  f_ea : int;
}

type divergence = {
  d_check : int;  (** ordinal of the cross-check that caught it *)
  d_cpu : int;    (** CPU whose fast path produced the answer *)
  d_pid : int;
  d_vsid : int;
  d_ea : int;
  d_kind : kind;
  d_fast : outcome;      (** what the BAT/TLB/htab fast path said *)
  d_reference : outcome; (** what the reference translator said *)
  d_recent_flushes : flush_event list;  (** newest first *)
}

type t

val create : unit -> t

val check :
  t ->
  cpu:int ->
  pid:int ->
  vsid:int ->
  ea:int ->
  kind:kind ->
  fast:outcome ->
  reference:outcome ->
  unit
(** Count one cross-check; record a divergence when the outcomes
    disagree.  The first {!max_kept} divergences are retained in full;
    later ones only increment {!total_divergences}.  [cpu] tags the
    divergence with the CPU whose TLB answered — on an SMP model a
    stale {e remote} TLB entry surfaces as a divergence on the CPU that
    kept it. *)

val note_flush : t -> what:string -> vsid:int -> ea:int -> unit
(** Remember a flush operation (bounded ring) so divergence reports can
    show what was invalidated — or should have been — just before. *)

val checks : t -> int
val total_divergences : t -> int

val divergences : t -> divergence list
(** Retained divergences, oldest first (at most {!max_kept}). *)

val max_kept : int

val report : divergence -> string
(** Multi-line human rendering of one divergence. *)

val summary : t -> string
(** One line: checks performed and divergences found. *)

(** {1 Boot defaults}

    For drivers that cannot reach the kernels being booted (the
    experiment registry boots its own): arm shadow checking
    process-wide, run, then collect every checker created in between —
    the same pattern as {!Trace.set_boot_defaults}. *)

val set_boot_defaults : enabled:bool -> unit -> unit
val boot_enabled : unit -> bool

val register : t -> unit
(** Add a checker to the process-wide drain list ([Kernel.boot] does
    this for checkers created via boot defaults). *)

val drain_registered : unit -> t list
(** Checkers registered since the last drain, in creation order. *)
