(* The implemented proposals: per-process frame-buffer BAT (§5.1),
   idle cache locking (§10.1), context-switch preloads (§10.2),
   and the write-back cost model they interact with. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Task = Kernel_sim.Task
module Config = Mmu_tricks.Config

let boot policy = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed:5 ()

(* --- frame buffer ------------------------------------------------------ *)

let test_fb_maps_aperture () =
  let k = boot Policy.optimized in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_map_framebuffer k ~pages:64 in
  Alcotest.(check int) "at the fb base" Mm.framebuffer_base ea;
  Alcotest.(check bool) "task flagged" true t.Task.maps_framebuffer;
  (* drawing works and goes through the page tables (no BAT policy) *)
  Kernel.touch k Mmu.Store ea;
  Kernel.touch k Mmu.Store (ea + (63 * Addr.page_size));
  Alcotest.(check bool) "fb faults populate page tables" true
    (Mm.mapped_pages t.Task.mm >= 2)

let test_fb_frames_never_freed () =
  let k = boot Policy.optimized in
  let free0 = Kernel_sim.Physmem.free_frames (Kernel.physmem k) in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_map_framebuffer k ~pages:16 in
  for i = 0 to 15 do
    Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
  done;
  (* aperture pages are device memory: they consume no RAM frames and
     exit must not try to free them *)
  Kernel.sys_exit k;
  Alcotest.(check int) "all RAM frames back" free0
    (Kernel_sim.Physmem.free_frames (Kernel.physmem k))

let test_fb_bat_bypasses_tlb () =
  let k = boot Config.optimized_fb_bat in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_map_framebuffer k ~pages:64 in
  let before = Perf.tlb_misses (Kernel.perf k) in
  for i = 0 to 63 do
    Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
  done;
  Alcotest.(check int) "no TLB misses for fb stores" before
    (Perf.tlb_misses (Kernel.perf k));
  Alcotest.(check int) "no faults either" 0 (Kernel.perf k).Perf.page_faults

let test_fb_bat_switched_per_process () =
  let k = boot Config.optimized_fb_bat in
  let x = Kernel.spawn k () and other = Kernel.spawn k () in
  Kernel.switch_to k x;
  let ea = Kernel.sys_map_framebuffer k ~pages:16 in
  let dbat = Mmu.dbat (Kernel.mmu k) in
  Alcotest.(check bool) "bat live for the owner" true (Bat.covers dbat ea);
  Kernel.switch_to k other;
  Alcotest.(check bool) "bat cleared for others" false (Bat.covers dbat ea);
  Kernel.switch_to k x;
  Alcotest.(check bool) "bat restored on switch back" true
    (Bat.covers dbat ea)

let test_fb_translation_correct () =
  let k = boot Config.optimized_fb_bat in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_map_framebuffer k ~pages:16 in
  (* BAT and page-table paths must agree on the physical address *)
  match Mmu.probe (Kernel.mmu k) Mmu.Store (ea + 0x5123) with
  | Some pa ->
      Alcotest.(check int) "aperture offset preserved" 0x5123
        (pa land 0xFFFF);
      Alcotest.(check bool) "outside RAM" true
        (pa >= 0x0800_0000)
  | None -> Alcotest.fail "fb must translate"

let test_fb_munmap_keeps_device_frames () =
  let k = boot Policy.optimized in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_map_framebuffer k ~pages:8 in
  let free_before = Kernel_sim.Physmem.free_frames (Kernel.physmem k) in
  for i = 0 to 7 do
    Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
  done;
  let free_touched = Kernel_sim.Physmem.free_frames (Kernel.physmem k) in
  (* aperture faults consume no data frames - at most one page-table
     directory page for the new region *)
  Alcotest.(check bool) "no data frames for device pages" true
    (free_before - free_touched <= 1);
  Kernel.sys_munmap k ~ea ~pages:8;
  (* and munmap must not "free" the device frames into the allocator *)
  Alcotest.(check int) "munmap frees nothing" free_touched
    (Kernel_sim.Physmem.free_frames (Kernel.physmem k));
  match Kernel.touch k Mmu.Load ea with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "unmapped aperture must fault"

let test_fb_bat_dropped_on_munmap () =
  let k = boot Config.optimized_fb_bat in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_map_framebuffer k ~pages:16 in
  Kernel.touch k Mmu.Store ea;
  Kernel.sys_munmap k ~ea ~pages:16;
  let dbat = Mmu.dbat (Kernel.mmu k) in
  Alcotest.(check bool) "BAT cleared with the mapping" false
    (Bat.covers dbat ea);
  (match Kernel.touch k Mmu.Store ea with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "unmapped fb must fault");
  Alcotest.(check bool) "flag dropped" false t.Task.maps_framebuffer

let test_fb_bat_dropped_on_exec () =
  let k = boot Config.optimized_fb_bat in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_map_framebuffer k ~pages:16 in
  Kernel.sys_exec k ~text_pages:4 ~data_pages:4 ~stack_pages:2;
  Alcotest.(check bool) "BAT gone after exec" false
    (Bat.covers (Mmu.dbat (Kernel.mmu k)) ea);
  match Kernel.touch k Mmu.Load ea with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "fb must not survive exec"

(* --- idle cache locking ------------------------------------------------- *)

let test_idle_lock_protects_cache () =
  let k = boot { Config.clearing_cached_list with Policy.idle_cache_lock = true } in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  (* warm a user line *)
  let data = Mm.user_text_base + (16 * Addr.page_size) in
  Kernel.touch k Mmu.Store data;
  let dcache = Memsys.dcache (Kernel.memsys k) in
  let occ_before = Cache.occupancy dcache in
  Kernel.idle_for k ~cycles:100_000;
  Alcotest.(check bool) "idle work allocated nothing" true
    (Cache.occupancy dcache <= occ_before);
  Alcotest.(check bool) "lock released after idle" false
    (Cache.is_locked dcache)

let test_no_lock_pollutes () =
  let k = boot Config.clearing_cached_list in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let dcache = Memsys.dcache (Kernel.memsys k) in
  let alloc0 = Cache.stats_allocations dcache Cache.Idle_clear in
  Kernel.idle_for k ~cycles:100_000;
  Alcotest.(check bool) "unlocked idle clearing allocates" true
    (Cache.stats_allocations dcache Cache.Idle_clear > alloc0)

(* --- preload ------------------------------------------------------------- *)

let test_preload_warms_task_lines () =
  let k = boot Config.optimized_preload in
  let a = Kernel.spawn k () and b = Kernel.spawn k () in
  Kernel.switch_to k a;
  Kernel.switch_to k b;
  let dcache = Memsys.dcache (Kernel.memsys k) in
  let ks = Kernel_sim.Kparams.kernel_phys_of_virt (Task.kstack_ea b) in
  Alcotest.(check bool) "incoming kstack line resident" true
    (Cache.contains dcache ks)

(* --- write-back accounting ---------------------------------------------- *)

let test_writebacks_counted () =
  let machine = Machine.ppc604_185 in
  let perf = Perf.create () in
  let m = Memsys.create ~machine ~perf in
  (* dirty a line, then stream over the same set until it is evicted *)
  Memsys.data_ref m ~source:Cache.User ~inhibited:false ~write:true 0x0;
  let set_stride = 32 * 1024 / 4 (* bytes per way *) in
  for i = 1 to 4 do
    Memsys.data_ref m ~source:Cache.User ~inhibited:false ~write:false
      (i * set_stride)
  done;
  Alcotest.(check bool) "a write-back was charged" true
    (perf.Perf.dcache_writebacks >= 1)

let test_writeback_costs_cycles () =
  let machine = Machine.ppc604_185 in
  let mk write =
    let perf = Perf.create () in
    let m = Memsys.create ~machine ~perf in
    Memsys.data_ref m ~source:Cache.User ~inhibited:false ~write 0x0;
    let set_stride = 32 * 1024 / 4 in
    for i = 1 to 4 do
      Memsys.data_ref m ~source:Cache.User ~inhibited:false ~write:false
        (i * set_stride)
    done;
    perf.Perf.cycles
  in
  Alcotest.(check bool) "evicting dirty costs more than clean" true
    (mk true > mk false)

(* --- the xserver workload ------------------------------------------------ *)

let small_x =
  { Workloads.Xserver.rounds = 6;
    clients = 2;
    fb_pages = 256;
    draws_per_round = 16 }

let test_xserver_runs_and_cleans_up () =
  let k = boot Policy.optimized in
  Workloads.Xserver.run k ~params:small_x;
  Alcotest.(check int) "no tasks left" 0 (List.length (Kernel.tasks k));
  Alcotest.(check bool) "work happened" true
    ((Kernel.perf k).Perf.syscalls > 10)

let test_xserver_fb_bat_reduces_misses () =
  let run policy =
    (Workloads.Xserver.measure ~machine:Machine.ppc604_185 ~policy
       ~params:{ small_x with Workloads.Xserver.rounds = 20 } ())
      .Workloads.Xserver.perf
  in
  let off = run Policy.optimized in
  let on_ = run Config.optimized_fb_bat in
  Alcotest.(check bool) "dedicated BAT cuts TLB misses" true
    (Perf.tlb_misses on_ < Perf.tlb_misses off)

let suite =
  [ Alcotest.test_case "fb maps aperture" `Quick test_fb_maps_aperture;
    Alcotest.test_case "fb frames never freed" `Quick
      test_fb_frames_never_freed;
    Alcotest.test_case "fb BAT bypasses TLB" `Quick test_fb_bat_bypasses_tlb;
    Alcotest.test_case "fb BAT switched per process" `Quick
      test_fb_bat_switched_per_process;
    Alcotest.test_case "fb translation correct" `Quick
      test_fb_translation_correct;
    Alcotest.test_case "fb munmap keeps device frames" `Quick
      test_fb_munmap_keeps_device_frames;
    Alcotest.test_case "fb BAT dropped on munmap" `Quick
      test_fb_bat_dropped_on_munmap;
    Alcotest.test_case "fb BAT dropped on exec" `Quick
      test_fb_bat_dropped_on_exec;
    Alcotest.test_case "idle lock protects cache" `Quick
      test_idle_lock_protects_cache;
    Alcotest.test_case "unlocked idle pollutes" `Quick test_no_lock_pollutes;
    Alcotest.test_case "preload warms task lines" `Quick
      test_preload_warms_task_lines;
    Alcotest.test_case "write-backs counted" `Quick test_writebacks_counted;
    Alcotest.test_case "write-back costs cycles" `Quick
      test_writeback_costs_cycles;
    Alcotest.test_case "xserver runs and cleans up" `Quick
      test_xserver_runs_and_cleans_up;
    Alcotest.test_case "fb BAT reduces misses (E11)" `Slow
      test_xserver_fb_bat_reduces_misses ]
