(** Physically-indexed set-associative L1 cache with write-back.

    Models the 603's 16K and the 604's 32K four-way caches with 32-byte
    lines.  Lines are written back: a store marks its line dirty, and
    evicting a dirty line costs a memory write that the {!Memsys} layer
    charges.  Accesses are classified so experiments can attribute cache
    pollution to its source (§8: page-table and hash-table references
    creating useless entries; §9: idle-task page clearing evicting live
    data).  Cache-inhibited accesses bypass the cache entirely and never
    allocate — the WIMG I-bit behaviour that makes uncached page clearing
    harmless.

    The cache can be {e locked} (§10.1's future-work proposal): while
    locked, hits behave normally but misses do not allocate, so the
    current contents cannot be displaced — what the paper suggests doing
    for the idle task. *)

(** Who performed an access; used only for attribution counters. *)
type source =
  | User
      (** workload loads/stores/fetches *)
  | Kernel
      (** kernel text/data/stack references *)
  | Page_table
      (** Linux two-level page-table walks *)
  | Htab
      (** hashed-page-table searches and inserts *)
  | Idle_clear
      (** page clearing performed by the idle task *)

val n_sources : int

val source_index : source -> int

val source_name : source -> string

(** Outcome of one reference. [dirty_writeback] is set when the access
    displaced a modified line, which costs a memory write. *)
type result =
  | Hit
  | Miss of { dirty_writeback : bool }
  | Bypass  (** cache-inhibited, or a locked-cache miss: no allocation *)

type t

val create : bytes:int -> ways:int -> t
(** [create ~bytes ~ways] builds an empty cache with 32-byte lines.
    [bytes / 32 / ways] must be a power of two. *)

val capacity_lines : t -> int

val access : t -> source:source -> inhibited:bool -> write:bool -> Addr.pa -> result
(** [access t ~source ~inhibited ~write pa] performs one reference to the
    line containing [pa]: LRU lookup/refresh on hit (marking dirty when
    [write]), allocation on miss, nothing on bypass. *)

val allocate_zero : t -> source:source -> Addr.pa -> result
(** [allocate_zero t ~source pa] is [dcbz]: establish the line zeroed and
    dirty {e without} fetching it from memory.  Returns [Miss] (with any
    write-back) when the line was newly allocated, [Hit] if it was
    already resident (now dirtied).  Respects the lock: a locked cache
    turns a non-resident dcbz into [Bypass] (the real instruction would
    stall to memory). *)

val contains : t -> Addr.pa -> bool
(** [contains t pa] — does the line holding [pa] currently reside in the
    cache (no LRU side effect)? *)

val set_locked : t -> bool -> unit
(** §10.1: while locked, misses do not allocate (reported as [Bypass]). *)

val is_locked : t -> bool

val invalidate_all : t -> unit
(** Flush the whole cache (contents dropped, no write-backs charged). *)

val occupancy : t -> int
(** Valid lines. *)

val dirty_lines : t -> int

val stats_allocations : t -> source -> int
(** Lines allocated (misses filled) on behalf of [source] since
    creation/reset. *)

val stats_evictions_caused_by : t -> source -> int
(** Valid lines evicted by allocations on behalf of [source] — the
    pollution measure of §8/§9. *)

val reset_stats : t -> unit
