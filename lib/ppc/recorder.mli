(** The flight recorder: bounded-memory streaming telemetry (§5.2's
    watch-it-while-it-runs loop as infrastructure).

    Snapshots the full observability state — a {!Perf.snapshot} plus a
    set of named integer gauge vectors installed by the subsystems that
    own them (htab occupancy/chains, TLB census, per-CPU miss slices,
    run-queue depths, span percentiles-so-far) — every [every] simulated
    cycles.

    Zero-cost when disabled: [next_sample] is [max_int], so the
    per-charge cost in {!Memsys.charge} is one integer compare.
    Observation-only when armed: no cycles charged, no RNG draws, so
    counters are byte-identical to an unrecorded run at the same seed.
    Memory-bounded: at most [cap] samples are retained; on overflow the
    recorder deterministically decimates (keeps every other sample,
    doubles the cadence), so arbitrarily long runs self-coarsen instead
    of growing.  Streaming consumers that want every sample at the
    original cadence hook {!set_on_sample}. *)

type sample = {
  s_cycle : int;  (** [Perf.cycles] when the sample fired *)
  s_perf : Perf.t;  (** immutable counter snapshot *)
  s_gauges : (string * int array) list;
      (** gauge vectors in source-installation order; arrays owned by
          the sample *)
}

type t = {
  perf : Perf.t;
  mutable next_sample : int;
      (** absolute cycle of the next sample; [max_int] = disabled.  Read
          directly by [Memsys.charge] — the one-int-compare contract. *)
  mutable every : int;
  mutable cap : int;
  mutable label : string;
  run_id : int;
  mutable sources : (string * (unit -> int array)) list;
  mutable samples : sample array;
  mutable len : int;
  mutable total : int;
  mutable on_sample : (t -> sample -> unit) option;
}

val default_every : int
val default_cap : int

(** {1 Lifecycle} *)

val create : perf:Perf.t -> t
(** Disabled unless {!set_boot_defaults} armed recording process-wide,
    in which case the new recorder starts enabled, registers itself for
    {!drain_registered}, and is passed to the {!set_boot_attach} hook. *)

val enable : ?every:int -> ?cap:int -> t -> unit
(** Start sampling every [every] simulated cycles, retaining at most
    [cap] samples (decimating beyond).  Resets retained samples.
    @raise Invalid_argument if [every < 1] or [cap < 2]. *)

val disable : t -> unit
val enabled : t -> bool

val set_label : t -> string -> unit
(** Which configuration this recorder watched (e.g. the experiment
    config name); carried into the timeline stream. *)

val label : t -> string

val run_id : t -> int
(** Process-unique id distinguishing interleaved recorders in one
    timeline file. *)

val every : t -> int
(** Current cadence — doubles each time the retained stream decimates. *)

val cap : t -> int

val set_on_sample : t -> (t -> sample -> unit) -> unit
(** Called after every sample is taken (before any decimation of later
    samples), with the recorder and the fresh sample — the streaming
    hook.  Must not charge cycles or touch simulator state. *)

(** {1 Gauge sources} *)

val add_source : t -> name:string -> (unit -> int array) -> unit
(** Install a named gauge vector; called only inside {!take_sample}, so
    arbitrarily expensive sources cost nothing until armed.
    Re-installing an existing name replaces the source in place without
    disturbing the gauge order. *)

val source_names : t -> string list

(** {1 Sampling} *)

val take_sample : t -> unit
(** Snapshot now and schedule the next sample.  Called by
    [Memsys.charge] when [Perf.cycles] crosses [next_sample]. *)

(** {1 Inspection} *)

val length : t -> int
(** Samples currently retained (<= [cap]). *)

val total : t -> int
(** Samples ever taken, including ones decimated away. *)

val sample : t -> int -> sample
(** @raise Invalid_argument out of range. *)

val samples : t -> sample list
val iter : t -> (sample -> unit) -> unit

(** {1 Process-wide boot defaults}

    The Trace/Profile/Span/Shadow registry discipline, for drivers that
    cannot reach the kernels being booted (the experiment registry boots
    its own).  Forked workers inherit the armed globals, so recording
    works under the supervised parallel Runner. *)

val set_boot_defaults : ?every:int -> ?cap:int -> enabled:bool -> unit -> unit
val boot_enabled : unit -> bool

val set_boot_attach : (t -> unit) option -> unit
(** Hook run on every boot-armed recorder at creation: how the Flight
    streaming/detector layer (which lives above Ppc) attaches its
    [on_sample] consumers without Ppc depending on it. *)

val drain_registered : unit -> t list
(** Boot-armed recorders created since the last drain, in creation
    order. *)
