(** Task structures.

    A task is a schedulable entity owning an address space.  The [code
    cursor] lets workloads model instruction fetch through the task's
    text working set without tracking it themselves. *)

open Ppc

type state =
  | Ready
  | Blocked of int  (** absolute cycle at which the task becomes ready *)
  | Exited

type t = {
  pid : int;
  mm : Mm.t;
  mutable state : state;
  mutable code_cursor : Addr.ea;  (** next fetch address in user text *)
  mutable maps_framebuffer : bool;
      (** the per-process frame-buffer BAT is loaded for this task on a
          context switch when the policy enables it *)
}

val create : pid:int -> mm:Mm.t -> t

val task_struct_ea : t -> Addr.ea
(** Kernel virtual address of this task's task_struct. *)

val kstack_ea : t -> Addr.ea

val is_ready : t -> at_cycle:int -> bool
(** Ready now: [Ready], or [Blocked] with an expired wake time. *)
