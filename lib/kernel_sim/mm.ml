open Ppc

type backing =
  | Anonymous
  | File_pages of Vfs.file * int
  | Phys_window of int

type vma = {
  va_start : Addr.ea;
  va_pages : int;
  va_writable : bool;
  va_backing : backing;
}

type t = {
  mm_pid : int;
  mutable mm_ctx : int;
  pt : Pagetable.t;
  mutable mm_vmas : vma list;
  mutable mmap_cursor : Addr.ea;
  (* bitmask of CPUs this address space has run on — the conservative
     shootdown target set, like Linux's mm_cpumask; never narrowed *)
  mutable mm_cpumask : int;
  mm_trace : Trace.t option;
}

let user_text_base = 0x01800000
let user_mmap_base = 0x40000000
let user_stack_top = 0x80000000
let framebuffer_base = 0x60000000

let create ?trace ~physmem ~vsid_alloc ~pid () =
  let ctx = Vsid_alloc.new_context vsid_alloc ~pid in
  let ctx_pa =
    Kparams.kernel_phys_of_virt (Kparams.task_struct_ea ~pid)
  in
  { mm_pid = pid;
    mm_ctx = ctx;
    pt = Pagetable.create ~physmem ~ctx_pa;
    mm_vmas = [];
    mmap_cursor = user_mmap_base;
    mm_cpumask = 0;
    mm_trace = trace }

let pid t = t.mm_pid
let ctx t = t.mm_ctx
let set_ctx t ctx = t.mm_ctx <- ctx

let cpumask t = t.mm_cpumask
let note_running t ~cpu = t.mm_cpumask <- t.mm_cpumask lor (1 lsl cpu)

let vsid_for_sr t ~vsid_alloc sr = Vsid_alloc.vsid vsid_alloc ~ctx:t.mm_ctx ~sr

let pagetable t = t.pt

let vma_end v = v.va_start + (v.va_pages lsl Addr.page_shift)

let overlaps a b = a.va_start < vma_end b && b.va_start < vma_end a

let add_vma t v =
  if not (Addr.is_page_aligned v.va_start) || v.va_pages <= 0 then
    invalid_arg "Mm.add_vma: malformed vma";
  if List.exists (overlaps v) t.mm_vmas then
    invalid_arg "Mm.add_vma: overlapping vma";
  t.mm_vmas <- v :: t.mm_vmas;
  match t.mm_trace with
  | Some tr when Trace.enabled tr ->
      Trace.emit_for tr Trace.Vma_map ~pid:t.mm_pid ~a:v.va_start
        ~b:v.va_pages
  | Some _ | None -> ()

let remove_vma t ~start =
  match List.partition (fun v -> v.va_start = start) t.mm_vmas with
  | [], _ -> None
  | v :: _, rest ->
      t.mm_vmas <- rest;
      (match t.mm_trace with
      | Some tr when Trace.enabled tr ->
          Trace.emit_for tr Trace.Vma_unmap ~pid:t.mm_pid ~a:v.va_start
            ~b:v.va_pages
      | Some _ | None -> ());
      Some v

let grow_vma t ~start ~extra_pages =
  if extra_pages <= 0 then invalid_arg "Mm.grow_vma: extra_pages";
  match List.partition (fun v -> v.va_start = start) t.mm_vmas with
  | [], _ -> invalid_arg "Mm.grow_vma: no vma at address"
  | v :: _, rest ->
      let grown = { v with va_pages = v.va_pages + extra_pages } in
      if List.exists (overlaps grown) rest then
        invalid_arg "Mm.grow_vma: growth would overlap";
      t.mm_vmas <- grown :: rest;
      grown

let find_vma t ea =
  List.find_opt (fun v -> ea >= v.va_start && ea < vma_end v) t.mm_vmas

let vmas t = t.mm_vmas

let alloc_mmap_range t ~pages =
  let ea = t.mmap_cursor in
  t.mmap_cursor <- t.mmap_cursor + (pages lsl Addr.page_shift);
  ea

let reset_vmas t =
  t.mm_vmas <- [];
  t.mmap_cursor <- user_mmap_base

let mapped_pages t = Pagetable.mapped_count t.pt

let destroy t ~physmem ~vsid_alloc ~free_frame =
  Pagetable.iter t.pt (fun _ea entry -> free_frame entry.Pagetable.rpn);
  Pagetable.destroy t.pt ~physmem;
  Vsid_alloc.retire_context vsid_alloc t.mm_ctx;
  t.mm_vmas <- []
