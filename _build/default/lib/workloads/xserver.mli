(** An X-server-style workload for the frame-buffer BAT proposal.

    §5.1 suggests (but does not implement): "having the kernel dedicate a
    BAT mapping to the frame buffer itself so programs such as X do not
    compete constantly with other applications or the kernel for TLB
    space ... the entire mechanism could be done per-process with a call
    to ioremap() and giving each process its own data BAT entry that
    could be switched during a context switch."

    This workload is the scenario that motivates it: a display server
    owning a 4 MB frame-buffer aperture (1024 pages — eight times a
    604's data TLB) scribbles scanlines all over it while client
    applications make requests over pipes and run their own working
    sets.  Without the dedicated BAT, every batch of drawing wipes the
    data TLB; with it, frame-buffer stores never touch the TLB at all. *)

module Kernel = Kernel_sim.Kernel

type params = {
  rounds : int;        (** request/draw cycles *)
  clients : int;       (** client applications *)
  fb_pages : int;      (** frame-buffer aperture size (1024 = 4 MB) *)
  draws_per_round : int;  (** scanline batches the server draws per request *)
}

val default_params : params

val run : Kernel.t -> params:params -> unit
(** Drive the scenario on a booted kernel (creates the server and client
    tasks, maps the frame buffer, runs the request loop). *)

type result = {
  perf : Ppc.Perf.t;
  wall_us : float;
  us_per_round : float;
}

val measure :
  machine:Ppc.Machine.t ->
  policy:Kernel_sim.Policy.t ->
  ?params:params ->
  ?seed:int ->
  unit ->
  result
