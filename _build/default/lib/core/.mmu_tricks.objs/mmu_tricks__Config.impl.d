lib/core/config.ml: Kernel_sim List
