(** Log-bucketed histograms.

    The trace layer charges distributions, not just totals: htab probe
    lengths, TLB-miss service costs, context-switch costs.  A histogram
    here is a fixed array of power-of-two buckets — bucket 0 holds
    values [<= 0], bucket [i >= 1] holds [2^(i-1) .. 2^i - 1] — so
    [observe] is allocation-free and cheap enough for hot-path use when
    tracing is on. *)

type t

val create : unit -> t
(** An empty histogram. *)

val observe : t -> int -> unit
(** Record one value.  No allocation. *)

val count : t -> int
(** Observations recorded. *)

val sum : t -> int
(** Sum of all observed values. *)

val max_value : t -> int
(** Largest value observed (0 when empty). *)

val mean : t -> float
(** Arithmetic mean (0 when empty). *)

val is_empty : t -> bool

val bucket_index : int -> int
(** The bucket a value falls into: 0 for [v <= 0], else the bit-length
    of [v]. *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] inclusive bounds of bucket [i]: [(0, 0)] for bucket 0,
    [(2^(i-1), 2^i - 1)] otherwise. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets in ascending order as [(lo, hi, count)]. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0..1]: the upper bound of the bucket
    where the cumulative count reaches [p]; the true max for the last
    bucket reached; 0 when empty.  Kept for compatibility (and for
    machine-readable documents that promise integers); prefer
    {!percentile_interpolated} for human-facing summaries. *)

val percentile_interpolated : t -> float -> float
(** Like {!percentile} but interpolating linearly within the winning
    bucket — the rank's fractional position among that bucket's
    observations picks a proportional point between the bucket bounds
    (tightened to the true max in the top occupied bucket), so skewed
    distributions are not rounded up to a power of two.  0 when
    empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding both inputs' observations:
    bucket-wise sum, summed counts/totals, max of maxima.  Associative
    and commutative, so histograms recorded in forked Runner workers
    combine in any order with a deterministic result.
    @raise Invalid_argument if the bucket geometries differ. *)

val merge_into : into:t -> t -> unit
(** Add [t]'s buckets and totals into [into], in place.
    @raise Invalid_argument if the bucket geometries differ. *)

val reset : t -> unit
