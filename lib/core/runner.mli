(** Supervised parallel experiment execution.

    Every experiment is deterministic in its seed and boots its own
    isolated kernel, so a run of the suite is embarrassingly parallel:
    fork N workers, deal the experiments round-robin, marshal each
    finished {!Experiments.table} back over a pipe, and merge in
    registry order.  The merged output is byte-identical to a serial
    run — parallelism changes wall-clock only, never results.

    The parent is a supervisor, not just a collector.  It drains the
    worker pipes with [select] under per-experiment deadlines, inspects
    every [waitpid] status, and distinguishes the ways a result can
    fail to arrive: the experiment raised ({!Failed}), the worker died
    under it ({!Crashed} with the exit status or fatal signal), it blew
    its wall-clock budget and was killed ({!Timed_out}), or the result
    stream was corrupt (a {!Failed} carrying the decode error).
    Experiments a dead worker never delivered are retried — first by
    re-forking fresh workers over just the orphaned slice, then, on the
    final attempt, serially in the parent under a SIGALRM deadline —
    within a bounded budget; outcomes recovered that way are wrapped in
    {!Retried}.

    [jobs = 1] (the default) runs in-process with no fork, so the
    runner is also the one code path the CLI and bench harness use for
    serial runs (timeouts still apply, via SIGALRM). *)

(** How a dead worker died. *)
type wstat =
  | Exited of int  (** [_exit]/[exit] with this status (never 0 here) *)
  | Signaled of int  (** fatal signal, in OCaml's [Sys] numbering *)

type outcome =
  | Done of Experiments.table
  | Failed of string
      (** the experiment raised (the exception text crossed the pipe),
          or its worker's result stream was corrupt *)
  | Crashed of wstat
      (** the hosting worker died before delivering this experiment *)
  | Timed_out of float
      (** the experiment exceeded the wall-clock budget (seconds) and
          its host was killed / the in-process attempt aborted *)
  | Retried of int * outcome
      (** final outcome after this many retries (the payload is never
          itself [Retried]) *)

val table_of_outcome : outcome -> Experiments.table option
(** The result table, if the experiment (eventually) produced one —
    unwraps {!Retried}. *)

val describe : outcome -> string
(** One-line human rendering ("ok", "worker killed by SIGKILL",
    "timed out after 5s (after 2 retries)", ...) for failure tables. *)

val collect_hook : (string -> Json.t option) ref
(** Per-experiment payload collector, called with the experiment id in
    whatever process hosted the attempt, immediately after it finished.
    The payload rides the existing result pipe back to the supervisor,
    which is what lets observation layers whose data lives in
    process-local registries (span recorders armed via
    {!Ppc.Span.set_boot_defaults}) keep [--jobs N]: each worker drains
    its own registries and ships the digest, instead of the data dying
    with the child.  The default hook returns [None]; hook exceptions
    are swallowed (a broken collector must not fail the experiment).
    The hook runs after {e every} attempt, so on a retried experiment
    only the final attempt's payload survives. *)

val run_collect :
  ?jobs:int ->
  ?seed:int ->
  ?timeout:float ->
  ?retries:int ->
  (string * (?seed:int -> unit -> Experiments.table)) list ->
  (string * outcome * Json.t option) list
(** Like {!run}, additionally returning what {!collect_hook} produced
    for each experiment in the hosting process.  Experiments that never
    ran to completion anywhere (crashed/hung through the whole retry
    ladder) carry [None]. *)

val run :
  ?jobs:int ->
  ?seed:int ->
  ?timeout:float ->
  ?retries:int ->
  (string * (?seed:int -> unit -> Experiments.table)) list ->
  (string * outcome) list
(** [run ~jobs ~seed ~timeout ~retries selected] executes every
    [(id, fn)] pair and returns [(id, outcome)] in the input's order
    (payloads from {!collect_hook}, if any, are dropped — use
    {!run_collect} to keep them).
    [jobs] is clamped to [1 .. length selected].  An experiment that
    raises becomes [Failed] (in-process or in a worker) rather than
    aborting the batch.

    [timeout] (seconds, default [0.] = unlimited) bounds each single
    experiment attempt: a forked worker that goes that long without
    delivering is SIGKILLed and its hung experiment reported
    {!Timed_out}; in-process attempts are aborted by SIGALRM.

    [retries] (default {!default_retries}) bounds how many times the
    undelivered experiments of a crashed, hung or corrupt worker are
    re-run — re-forked first, serially in-parent on the last attempt.
    With the budget exhausted the provisional failure ([Crashed],
    [Timed_out] or [Failed]) is returned, wrapped in {!Retried} when
    any retry was attempted. *)

val default_retries : int
(** Retry budget used when [?retries] is omitted (2: one re-fork round,
    one serial in-parent round). *)

val default_jobs : unit -> int
(** Number of online cores, probed via [getconf _NPROCESSORS_ONLN] and
    falling back to [nproc] when getconf is missing or unhelpful;
    clamped to [min_jobs .. max_jobs]; [min_jobs] when neither probe
    works. *)

val min_jobs : int
val max_jobs : int

val clamp_jobs : int -> int
(** Clamp a requested job count to [min_jobs .. max_jobs] — the single
    authority on worker-count bounds ([run] additionally never forks
    more workers than it has experiments). *)

val serial_forcers :
  tracing:bool -> profiled:bool -> shadow:bool -> cpus:int -> string list
(** Which of the caller's requests force a serial ([jobs = 1]) run —
    observation layers whose data lives in the booting process and
    multi-CPU kernels can't ship their state over the result pipe.
    Returns the forcing CLI flag names (["--trace/--timeline"],
    ["--profile"], ["--shadow"], ["--cpus"]), empty when any job count
    is fine.  The CLI warns (errors under [--strict]) instead of
    silently downgrading [--jobs]. *)

val fault_env : string
(** ["MMU_SIM_FAULT"] — deterministic fault injection for testing the
    supervision paths.  Comma-separated [kind:id] entries, applied at
    the moment experiment [id] is about to run, in whatever process
    hosts it: [kill:<id>] (host SIGKILLs itself), [exit:<id>[:n]]
    (host [_exit]s with status [n], default 3), [raise:<id>] (the
    experiment raises, a clean {!Failed}), [hang:<id>] (blocks until a
    timeout).  The supervisor disarms an experiment's faults before
    retrying it, so one injected fault exercises exactly one recovery
    round.  Beware: in a serial ([jobs = 1]) run the hosting process is
    the CLI itself, so [kill]/[exit] faults take it down — that is the
    point of the knob, not a defect. *)
