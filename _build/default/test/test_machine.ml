(* Machine descriptions and the cost model. *)
open Ppc

let test_tlb_sizes () =
  Alcotest.(check int) "603 has 128 TLB entries" 128
    (Machine.tlb_entries Machine.ppc603_133);
  Alcotest.(check int) "604 has 256 TLB entries" 256
    (Machine.tlb_entries Machine.ppc604_185)

let test_reload_styles () =
  Alcotest.(check bool) "603 is software" true
    (Machine.ppc603_180.Machine.reload = Machine.Software_trap);
  Alcotest.(check bool) "604 is hardware" true
    (Machine.ppc604_200.Machine.reload = Machine.Hardware_search)

let test_common_config () =
  List.iter
    (fun m ->
      Alcotest.(check int) "32 MB RAM" (32 * 1024 * 1024)
        m.Machine.ram_bytes;
      Alcotest.(check int) "16384 htab PTEs" 16384 m.Machine.htab_ptes;
      Alcotest.(check int) "2048 PTEGs" 2048 (Machine.n_ptegs m))
    Machine.all

let test_cache_sizes () =
  Alcotest.(check int) "603 16K dcache" (16 * 1024)
    Machine.ppc603_133.Machine.dcache.Machine.cache_bytes;
  Alcotest.(check int) "604 32K dcache" (32 * 1024)
    Machine.ppc604_185.Machine.dcache.Machine.cache_bytes

let test_paper_cost_constants () =
  Alcotest.(check int) "603 trap overhead is 32 cycles" 32
    Cost.tlb_miss_trap_cycles;
  Alcotest.(check int) "604 htab-miss interrupt is 91 cycles" 91
    Cost.htab_miss_trap_cycles

let test_us_conversion () =
  Alcotest.(check (float 1e-9)) "133 cycles at 133MHz is 1us" 1.0
    (Cost.us_of_cycles ~mhz:133 133);
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Cost.us_of_cycles ~mhz:133 0)

let test_mb_per_s () =
  (* 1 MB moved in 1e6 cycles at 100 MHz = 10ms -> 100 MB/s *)
  Alcotest.(check (float 1e-6)) "bandwidth" 100.0
    (Cost.mb_per_s ~bytes:1_000_000 ~mhz:100 ~cycles:1_000_000);
  Alcotest.(check (float 1e-9)) "zero cycles" 0.0
    (Cost.mb_per_s ~bytes:1 ~mhz:100 ~cycles:0)

let test_hw_reload_near_120_cycles () =
  (* The paper measures hardware reloads at up to 120 cycles with 16
     memory accesses: overhead + 16 mostly-cached accesses must land in
     that neighbourhood. *)
  let worst =
    Cost.hw_search_overhead_cycles
    + (2 * Machine.ppc604_185.Machine.mem_latency)
    + (14 * Cost.cache_hit_cycles)
  in
  Alcotest.(check bool) "near 120" true (worst > 60 && worst <= 130)

let suite =
  [ Alcotest.test_case "TLB sizes" `Quick test_tlb_sizes;
    Alcotest.test_case "reload styles" `Quick test_reload_styles;
    Alcotest.test_case "common configuration" `Quick test_common_config;
    Alcotest.test_case "cache sizes" `Quick test_cache_sizes;
    Alcotest.test_case "paper cost constants" `Quick
      test_paper_cost_constants;
    Alcotest.test_case "us conversion" `Quick test_us_conversion;
    Alcotest.test_case "MB/s conversion" `Quick test_mb_per_s;
    Alcotest.test_case "hw reload near 120 cycles" `Quick
      test_hw_reload_near_120_cycles ]
