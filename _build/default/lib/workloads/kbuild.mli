(** The kernel-compile macro workload.

    "The mix of process creation, file I/O, and computation in the kernel
    compile is a good guess at a typical user load" (§4).  This is a
    scaled synthetic compile: a driver ("make") forks one "cc" job per
    source file; each job execs a fresh image, reads a cold private
    source file plus a warm shared header file, runs compute phases over
    code and data working sets, grows and shrinks a malloc arena with
    mmap/munmap, and exits.  Cold file pages cost simulated disk waits
    that the kernel spends in the idle task — exactly the windows the §7
    zombie reclaim and §9 page clearing need.

    The paper's real compile performs ~219M TLB misses over ~10 minutes;
    this workload is roughly 200x smaller.  Miss {e ratios} and relative
    wall-clock between policies are scale-invariant for this workload
    shape (EXPERIMENTS.md reports both raw and extrapolated numbers). *)

module Kernel = Kernel_sim.Kernel

type params = {
  jobs : int;            (** number of "cc" invocations *)
  compute_rounds : int;  (** compute phases per job *)
  job_text_pages : int;  (** cc image text size *)
  job_data_pages : int;  (** cc data working set *)
  source_pages : int;    (** per-job cold source file *)
  header_pages : int;    (** shared header file, warm after job 1 *)
}

val default_params : params
(** 24 jobs, 80-page text, 320-page data — a hot working set beyond TLB
    reach, pressuring the MMU the way the real compile does. *)

val run : ?probe:(Kernel.t -> unit) -> Kernel.t -> params:params -> unit
(** Run the whole compile on a booted kernel.  Use {!Measure.perf} around
    it for counters.  [probe] is called once per job at the hottest point
    (mid-compute), for sampling MMU state like the paper's TLB-share
    numbers. *)

type result = {
  perf : Ppc.Perf.t;     (** counter deltas for the whole compile *)
  wall_us : float;       (** simulated wall-clock *)
  busy_us : float;       (** wall-clock minus idle *)
}

val measure :
  machine:Ppc.Machine.t ->
  policy:Kernel_sim.Policy.t ->
  ?params:params ->
  ?seed:int ->
  unit ->
  result
(** Boot a fresh kernel and run the compile under measurement. *)
