lib/ppc/cache.ml: Addr Array
