test/test_kernel.ml: Addr Alcotest Bat Kernel_sim List Machine Mmu Mmu_tricks Perf Ppc
