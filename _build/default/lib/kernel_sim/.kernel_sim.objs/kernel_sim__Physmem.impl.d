lib/kernel_sim/physmem.ml: Addr Array Ppc
