(** A parallel make, scheduled for real.

    The other workloads drive context switches explicitly; this one runs
    compile jobs as {!Kernel_sim.Sched} processes: each job sleeps on its
    cold source-file reads, and while it sleeps the scheduler runs
    whichever other job is ready — disk latency overlaps with
    computation, exactly the multiprogrammed behaviour §9 leans on ("a
    lot of I/O happens that must be waited for").  Sweeping the jobserver
    width shows the wall-clock benefit of that overlap and where it
    saturates (EX2 in the bench harness). *)

module Kernel = Kernel_sim.Kernel

type params = {
  jobs : int;           (** total compile jobs *)
  jobserver : int;      (** concurrent jobs ("make -jN") *)
  text_pages : int;
  data_pages : int;
  source_pages : int;   (** cold source file per job *)
  compute_rounds : int;
}

val default_params : params
(** 12 jobs at -j2. *)

type result = {
  perf : Ppc.Perf.t;
  wall_us : float;
  busy_us : float;
  idle_fraction : float;  (** wall-clock share spent in the idle task *)
}

val run : Kernel.t -> params:params -> unit

val measure :
  machine:Ppc.Machine.t ->
  policy:Kernel_sim.Policy.t ->
  params:params ->
  ?seed:int ->
  unit ->
  result
