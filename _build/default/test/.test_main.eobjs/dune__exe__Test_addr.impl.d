test/test_addr.ml: Addr Alcotest Ppc QCheck QCheck_alcotest
