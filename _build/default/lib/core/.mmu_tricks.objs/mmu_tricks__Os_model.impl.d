lib/core/os_model.ml: Addr Array Cost Kernel_sim Machine Memsys Mmu Perf Ppc System
