type ea = int
type pa = int
type vpn = int

let page_shift = 12
let page_size = 1 lsl page_shift
let line_shift = 5
let line_size = 1 lsl line_shift
let ea_mask = 0xFFFFFFFF

let sr_index ea = (ea lsr 28) land 0xF
let page_index ea = (ea lsr page_shift) land 0xFFFF
let page_offset ea = ea land (page_size - 1)
let page_base ea = ea land lnot (page_size - 1) land ea_mask
let epn ea = (ea lsr page_shift) land 0xFFFFF

let vpn_of ~vsid ~ea = (vsid lsl 16) lor page_index ea
let vsid_of_vpn vpn = (vpn lsr 16) land 0xFFFFFF
let page_index_of_vpn vpn = vpn land 0xFFFF

let pa_of ~rpn ~ea = ((rpn land 0xFFFFF) lsl page_shift) lor page_offset ea
let rpn_of_pa pa = (pa lsr page_shift) land 0xFFFFF

let line_index pa = pa lsr line_shift

let is_page_aligned a = a land (page_size - 1) = 0

let round_up_pages bytes = (bytes + page_size - 1) lsr page_shift

let pp_ea fmt ea = Format.fprintf fmt "0x%08x" ea
