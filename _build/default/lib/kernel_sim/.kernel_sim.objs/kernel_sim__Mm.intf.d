lib/kernel_sim/mm.mli: Addr Pagetable Physmem Ppc Vfs Vsid_alloc
