lib/core/metrics.mli: Machine Perf Ppc
