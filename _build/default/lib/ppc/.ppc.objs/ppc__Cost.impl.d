lib/ppc/cost.ml:
