open Ppc
module Kernel = Kernel_sim.Kernel

let perf k f =
  let before = Perf.snapshot (Kernel.perf k) in
  f ();
  Perf.diff ~after:(Perf.snapshot (Kernel.perf k)) ~before

let cycles k f = (perf k f).Perf.cycles

let us k f =
  Cost.us_of_cycles
    ~mhz:(Kernel.machine k).Machine.mhz
    (cycles k f)
