type kind =
  | Fetch
  | Load
  | Store

let kind_name = function
  | Fetch -> "fetch"
  | Load -> "load"
  | Store -> "store"

type structure =
  | Bat
  | Tlb
  | Htab
  | Page_table
  | No_translation

let structure_name = function
  | Bat -> "bat"
  | Tlb -> "tlb"
  | Htab -> "htab"
  | Page_table -> "page-table"
  | No_translation -> "no-translation"

type outcome = {
  pa : int option;
  inhibited : bool;
  answered : structure;
}

let agree a b =
  match (a.pa, b.pa) with
  | None, None -> true
  | Some pa, Some pb -> pa = pb && a.inhibited = b.inhibited
  | Some _, None | None, Some _ -> false

type flush_event = {
  f_what : string;
  f_vsid : int;
  f_ea : int;
}

type divergence = {
  d_check : int;
  d_cpu : int;
  d_pid : int;
  d_vsid : int;
  d_ea : int;
  d_kind : kind;
  d_fast : outcome;
  d_reference : outcome;
  d_recent_flushes : flush_event list;
}

let max_kept = 32
let max_flushes = 8

type t = {
  mutable sh_checks : int;
  mutable sh_total_divergences : int;
  mutable sh_divergences_rev : divergence list;  (* newest first, capped *)
  mutable sh_kept : int;
  mutable sh_flushes : flush_event list;  (* newest first, capped *)
  mutable sh_n_flushes : int;
}

let create () =
  { sh_checks = 0;
    sh_total_divergences = 0;
    sh_divergences_rev = [];
    sh_kept = 0;
    sh_flushes = [];
    sh_n_flushes = 0 }

let note_flush t ~what ~vsid ~ea =
  let ev = { f_what = what; f_vsid = vsid; f_ea = ea } in
  let l = ev :: t.sh_flushes in
  t.sh_flushes <-
    (if t.sh_n_flushes >= max_flushes then
       (* drop the oldest: the list is short, filteri is fine *)
       List.filteri (fun i _ -> i < max_flushes - 1) l
     else begin
       t.sh_n_flushes <- t.sh_n_flushes + 1;
       l
     end)

let check t ~cpu ~pid ~vsid ~ea ~kind ~fast ~reference =
  t.sh_checks <- t.sh_checks + 1;
  if not (agree fast reference) then begin
    t.sh_total_divergences <- t.sh_total_divergences + 1;
    if t.sh_kept < max_kept then begin
      t.sh_kept <- t.sh_kept + 1;
      t.sh_divergences_rev <-
        { d_check = t.sh_checks;
          d_cpu = cpu;
          d_pid = pid;
          d_vsid = vsid;
          d_ea = ea;
          d_kind = kind;
          d_fast = fast;
          d_reference = reference;
          d_recent_flushes = t.sh_flushes }
        :: t.sh_divergences_rev
    end
  end

let checks t = t.sh_checks
let total_divergences t = t.sh_total_divergences
let divergences t = List.rev t.sh_divergences_rev

let outcome_string o =
  match o.pa with
  | Some pa ->
      Printf.sprintf "pa=0x%08x%s (answered by %s)" pa
        (if o.inhibited then " cache-inhibited" else "")
        (structure_name o.answered)
  | None -> Printf.sprintf "FAULT (decided by %s)" (structure_name o.answered)

let report d =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "shadow divergence (check #%d): %s ea=0x%08x cpu=%d pid=%d vsid=0x%x\n"
       d.d_check (kind_name d.d_kind) d.d_ea d.d_cpu d.d_pid d.d_vsid);
  Buffer.add_string b
    (Printf.sprintf "  fast path: %s\n" (outcome_string d.d_fast));
  Buffer.add_string b
    (Printf.sprintf "  reference: %s\n" (outcome_string d.d_reference));
  (match d.d_recent_flushes with
  | [] -> ()
  | flushes ->
      Buffer.add_string b "  recent flushes (newest first):\n";
      List.iter
        (fun f ->
          Buffer.add_string b
            (Printf.sprintf "    %s vsid=0x%x ea=0x%08x\n" f.f_what f.f_vsid
               f.f_ea))
        flushes);
  Buffer.contents b

let summary t =
  Printf.sprintf "%d translations cross-checked, %d divergence(s)"
    t.sh_checks t.sh_total_divergences

(* --- boot defaults ----------------------------------------------------- *)

let boot_default = ref false
let registered_rev : t list ref = ref []

let set_boot_defaults ~enabled () = boot_default := enabled
let boot_enabled () = !boot_default

let register t = registered_rev := t :: !registered_rev

let drain_registered () =
  let l = List.rev !registered_rev in
  registered_rev := [];
  l
