lib/workloads/kbuild.mli: Kernel_sim Ppc
