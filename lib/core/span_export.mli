(** Exporters for {!Ppc.Span} recorders.

    The recorder stores raw per-request int arrays; this module renders
    them three ways: the machine-readable spans document embedded under
    [observability.spans] in experiment results (and consumed by
    [check --slo]), Perfetto trace JSON with one track per request, and
    text tables for the [spans] subcommand.

    Every number in the JSON document is an integer (cycles, counts,
    {!Ppc.Hist.percentile} bucket bounds), so the document is
    byte-identical across [--jobs] counts and safe to [cmp] in CI. *)

open Ppc

val hist_json : Hist.t -> Json.t
(** [{count; sum; max; p50; p99; p999; buckets}] with integer
    percentiles. *)

val request_json : Span.t -> Span.request -> Json.t

val recorder_json : ?top:int -> Span.t -> Json.t
(** One per-config object: [config] (the recorder's label), request
    counts, the [overall] latency histogram, per-[classes] histograms,
    component [count]/[cost] totals, and the [top] (default 5) slowest
    requests with their breakdowns. *)

val interesting : Span.t -> bool
(** A recorder that saw at least one request — the filter that keeps
    span-less experiments out of the spans document. *)

val to_json : ?top:int -> Span.t list -> Json.t
(** The spans document: a list of {!recorder_json} objects in recorder
    creation order (one per configuration the experiment booted). *)

val to_chrome : ?mhz:int -> ?name:string -> Span.t list -> Json.t
(** Perfetto/Chrome trace JSON: one process per recorder, one thread
    per request, one complete slice from arrival to completion with the
    component breakdown in [args] — queued requests render as
    overlapping slices. *)

val slowest_table : ?top:int -> Span.t -> string
(** Text table of the [top] (default 10) slowest requests: latency and
    component costs in cycles. *)

val summary : Span.t -> string
(** One line: label, request counts, latency percentiles in cycles. *)
