lib/kernel_sim/sched.mli: Kernel Task
