examples/lmbench_tour.mli:
